"""Distributed key generation and verifiable resharing (dealerless setup).

The trusted dealer of Section 2 is the single point whose compromise
breaks the whole point of distributing trust.  This module removes it
for all *threshold* key material: every party acts as a dealer of a
random contribution, shares it verifiably along the access formula, and
the sum of the contributions from an agreed *qualified set* becomes the
coin / encryption / signature keys — no party ever knows the joint
secret.  What remains provisioned out-of-band is exactly the model's
standing assumption: authenticated point-to-point channels (pairwise
channel keys plus per-party identity signing keys), the same PKI every
DKG in the literature presumes (Pedersen, Gennaro et al., FROST/ChillDKG).

Building blocks, all from this stack itself:

* **Feldman commitment trees** generalize Feldman's verifiable secret
  sharing to the Benaloh-Leichter LSSS: one coefficient-commitment
  vector per threshold gate of the formula.  A child's value commitment
  is derived publicly from its parent gate (``Π_j C_j^{(i+1)^j}``), so
  a single tree makes every subshare of the sharing verifiable.
* **Reliable broadcast** (Bracha, keyless) carries each dealer's
  commitment so all honest parties agree on what every dealer dealt.
  Subshares ride *inside* the broadcast, masked by pads derived from
  the pairwise channel keys — no separate private-send round, and a
  complaint can be answered publicly.
* **Complaints with public defense** (Gennaro et al.): a party whose
  subshare fails verification accuses the dealer; the dealer publishes
  the accuser's subshares in the clear (their secrecy is forfeit, the
  sharing's is not) and everyone re-checks them against the commitment
  tree.  A dealer with an invalid defense is expelled; the protocol
  degrades gracefully instead of aborting.
* **Transcript certification** (the ChillDKG session pattern, see
  ROADMAP): each party signs the hash of its settled transcript —
  the qualified set and its commitments — and the run completes when a
  quorum of *matching* signed transcripts is collected.  The resulting
  certificate is transferable: it convinces anyone that a quorum agreed
  on these keys.  If views diverge (a dealer equivocated near the
  flush boundary) no quorum forms and the session stalls; the host
  retries under a fresh tag — conditional agreement, not disagreement.

:class:`VerifiableResharing` reuses the same machinery to move an
existing sharing onto a *new* access structure/membership for
epoch-based reconfiguration: each old party reshards every old subshare
along the new formula with the commitment tree's root pinned to the old
public verification value, and the new subshares are the λ-weighted
sums over an agreed qualified set of old dealers.  The public key is
preserved (checked, not trusted); the old shares become useless because
the new verification values are freshly randomized.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..adversary.formulas import Formula, Leaf, Threshold
from ..adversary.quorums import QuorumSystem
from ..core.protocol import Context, Protocol, SessionId
from ..core.reliable_broadcast import ReliableBroadcast, rbc_session
from .coin import CoinPublic, CoinShareholder
from .dealer import PartyKeys, PublicKeys
from .groups import SchnorrGroup
from .hashing import hash_bytes, hash_to_exponent, hash_to_group
from .lsss import LsssScheme, LsssSharing, SlotId
from .schnorr import Signature, SigningKey, VerifyKey, keygen
from .shamir import evaluate_polynomial
from .threshold_enc import DecryptionShareholder, EncryptionPublic
from .threshold_sig import QuorumCertScheme, QuorumCertShareholder

__all__ = [
    "FeldmanTree",
    "deal_verifiable",
    "tree_commitments",
    "tree_consistent",
    "slot_commitment",
    "secret_commitment",
    "BootstrapPublic",
    "BootstrapKeys",
    "provision_bootstrap",
    "DkgCommit",
    "ReshareCommit",
    "DkgStatus",
    "DkgDefense",
    "DkgReady",
    "DkgOutput",
    "dkg_session",
    "reshare_session",
    "DistributedKeyGeneration",
    "VerifiableResharing",
    "build_public_keys",
    "build_party_keys",
]


# ===========================================================================
# Feldman commitment trees over the Benaloh-Leichter formula
# ===========================================================================


@dataclass(frozen=True)
class FeldmanTree:
    """Per-gate Feldman coefficient commitments for an LSSS sharing.

    ``nodes`` maps each threshold gate of the access formula — by its
    path, preorder — to the commitments ``g^{a_0} … g^{a_{k-1}}`` of the
    Shamir polynomial dealt at that gate.  Everything is nested tuples,
    so a tree is hashable (reliable broadcast requires it) and
    wire-encodable.
    """

    nodes: tuple[tuple[SlotId, tuple[int, ...]], ...]


def _gate_map(formula: Formula) -> dict[SlotId, Threshold]:
    """Every threshold gate of the formula by its path."""
    gates: dict[SlotId, Threshold] = {}

    def collect(node: Formula, path: SlotId) -> None:
        if isinstance(node, Threshold):
            gates[path] = node
            for idx, child in enumerate(node.children):
                collect(child, (*path, idx))

    collect(formula, ())
    return gates


def _derived_commitment(
    group: SchnorrGroup, commitments: tuple[int, ...], point: int
) -> int:
    """``Π_j C_j^{point^j}`` — the value commitment of child ``point``."""
    pairs = []
    power = 1
    for commitment in commitments:
        pairs.append((commitment, power))
        power = (power * point) % group.q
    return group.multiexp(pairs)


def deal_verifiable(
    group: SchnorrGroup,
    scheme: LsssScheme,
    secret: int,
    rng: random.Random,
) -> tuple[LsssSharing, FeldmanTree]:
    """Deal ``secret`` along the formula, emitting Feldman commitments.

    Mirrors :meth:`LsssScheme.deal` exactly (same recursion, same
    points), additionally committing to every gate polynomial so each
    subshare can be verified against public values alone.
    """
    if scheme.modulus != group.q:
        raise ValueError("LSSS must be over Z_q of the group")
    shares: dict[int, dict[SlotId, int]] = {}
    nodes: list[tuple[SlotId, tuple[int, ...]]] = []

    def descend(node: Formula, value: int, path: SlotId) -> None:
        if isinstance(node, Leaf):
            shares.setdefault(node.party, {})[path] = value % group.q
            return
        assert isinstance(node, Threshold)
        coeffs = [value % group.q] + [
            rng.randrange(group.q) for _ in range(node.k - 1)
        ]
        nodes.append((path, tuple(group.power_of_g(c) for c in coeffs)))
        for idx, child in enumerate(node.children):
            child_value = evaluate_polynomial(coeffs, idx + 1, group.q)
            descend(child, child_value, (*path, idx))

    descend(scheme.formula, secret % group.q, ())
    return LsssSharing(shares=shares), FeldmanTree(nodes=tuple(nodes))


def tree_commitments(tree: FeldmanTree) -> dict[SlotId, tuple[int, ...]]:
    """The tree's gate->commitments map (no validation)."""
    return dict(tree.nodes)


def tree_consistent(
    group: SchnorrGroup,
    scheme: LsssScheme,
    tree: object,
    root: int | None = None,
) -> bool:
    """Full structural + algebraic validation of an untrusted tree.

    Checks that the gates mirror the formula exactly, that every
    commitment is a group member, and that each non-root gate's
    constant-term commitment equals the value commitment derived from
    its parent — i.e. the tree is one consistent sharing.  With
    ``root`` given, additionally pins the root secret commitment to it
    (used by resharing to prove the dealt secret IS the old subshare).
    """
    if not isinstance(tree, FeldmanTree) or not isinstance(tree.nodes, tuple):
        return False
    gates = _gate_map(scheme.formula)
    if () not in gates:
        return False  # a bare-leaf formula has nothing to commit to
    seen: dict[SlotId, tuple[int, ...]] = {}
    for entry in tree.nodes:
        if not (isinstance(entry, tuple) and len(entry) == 2):
            return False
        path, commitments = entry
        if not (
            isinstance(path, tuple)
            and all(isinstance(i, int) for i in path)
            and isinstance(commitments, tuple)
            and all(isinstance(c, int) for c in commitments)
        ):
            return False
        if path in seen:
            return False
        seen[path] = commitments
    if set(seen) != set(gates):
        return False
    for path in sorted(gates):
        commitments = seen[path]
        if len(commitments) != gates[path].k:
            return False
        if not all(group.is_member(c) for c in commitments):
            return False
    if root is not None and seen[()][0] != root:
        return False
    for path in sorted(gates):
        if not path:
            continue
        derived = _derived_commitment(group, seen[path[:-1]], path[-1] + 1)
        if seen[path][0] != derived:
            return False
    return True


def slot_commitment(
    group: SchnorrGroup,
    commitments: dict[SlotId, tuple[int, ...]],
    slot: SlotId,
) -> int:
    """The public value commitment ``g^{subshare}`` of a leaf slot."""
    parent = commitments.get(slot[:-1])
    if parent is None:
        raise KeyError(f"slot {slot} has no parent gate in the tree")
    return _derived_commitment(group, parent, slot[-1] + 1)


def secret_commitment(tree: FeldmanTree) -> int:
    """``g^{secret}`` — the root gate's constant-term commitment."""
    return tree_commitments(tree)[()][0]


# ===========================================================================
# Bootstrap bundles (the pre-key Context surface)
# ===========================================================================


@dataclass(frozen=True)
class BootstrapPublic:
    """A pre-key stand-in for :class:`PublicKeys`.

    Carries exactly the Context surface the keyless bootstrap protocols
    (reliable broadcast, DKG) read: the party count and the quorum
    system — both public parameters, agreed out-of-band like the
    channel keys.
    """

    n: int
    quorum: QuorumSystem


@dataclass(frozen=True)
class BootstrapKeys:
    """A party's pre-key identity: signing key + pairwise channel keys.

    This is the authenticated-channel assumption of the model made
    concrete; no *threshold* secret exists anywhere before the DKG.
    """

    party: int
    signing_key: SigningKey
    channel_keys: dict[int, bytes] = field(default_factory=dict)


def provision_bootstrap(
    parties: list[int],
    rng: random.Random,
    group: SchnorrGroup,
) -> dict[int, BootstrapKeys]:
    """Operator-side PKI provisioning: identity keys + channel keys.

    This is the *only* out-of-band step of a dealerless setup, and it
    carries no threshold secret: compromising one bundle corrupts one
    party, exactly the model's per-party assumption.  (The dealer, by
    contrast, knows every secret of every party.)
    """
    from .dealer import deal_channel_keys

    channel_keys = deal_channel_keys(parties, rng)
    return {
        party: BootstrapKeys(
            party=party,
            signing_key=keygen(rng, group),
            channel_keys=channel_keys[party],
        )
        for party in parties
    }


def _mask_key(keys: object, peer: int) -> bytes:
    """The symmetric key this party shares with ``peer``.

    A dealer's own subshares are masked under a key derived from its
    signing key (nobody else must learn even the dealer's own-slot
    contribution: if every other contributor to a slot were corrupted,
    publishing it would hand the adversary the summed subshare).
    """
    if peer == keys.party:
        return hash_bytes("dkg-self-mask", keys.signing_key.x)
    key = keys.channel_keys.get(peer)
    if key is None:
        raise ValueError(f"party {keys.party} holds no channel key for {peer}")
    return key


def _pad(
    group: SchnorrGroup,
    key: bytes,
    session: SessionId,
    dealer: int,
    owner: int,
    kind: str,
    slot: object,
) -> int:
    """The one-time pad masking one subshare inside a public commit."""
    return hash_to_exponent(group, "dkg-pad", key, session, dealer, owner, kind, slot)


# ===========================================================================
# Messages
# ===========================================================================


@dataclass(frozen=True)
class DkgCommit:
    """One dealer's reliably-broadcast contribution.

    The masked subshare tables are ``((slot, value + pad), ...)`` over
    *all* slots; only each slot's owner can strip its pad, but everyone
    can check the table covers the right slots.
    """

    verify_key: int  # h = g^x of the dealer's identity signing key
    coin_tree: FeldmanTree
    enc_tree: FeldmanTree
    masked_coin: tuple
    masked_enc: tuple


@dataclass(frozen=True)
class ReshareCommit:
    """One old party's resharing of every old subshare it owns.

    Entries are ``(old_slot, tree, masked_table)`` where the tree deals
    the old subshare along the NEW formula with its root commitment
    pinned to the old public verification value — publicly proving the
    resharing preserves the secret.
    """

    coin: tuple
    enc: tuple


@dataclass(frozen=True)
class DkgStatus:
    """One receiver's complete complaint set — the complaint round.

    Broadcast exactly once, after every dealer's commit has been
    delivered (or the dealer excluded), so it lists *all* dealers whose
    subshares failed verification.  Settlement waits for a status from
    every receiver: no party freezes its transcript while a complaint
    it has not yet seen is in flight — the async race that would
    otherwise split the qualified set on every expulsion.
    """

    complaints: tuple


@dataclass(frozen=True)
class DkgDefense:
    """The dealer's public answer: the accuser's subshares in the clear.

    Everyone re-checks them against the commitment tree; a valid
    defense clears the dealer (and re-supplies the accuser), an invalid
    one expels it.
    """

    accuser: int
    coin_values: tuple
    enc_values: tuple


@dataclass(frozen=True)
class DkgReady:
    """A signed transcript hash; a quorum of matching ones completes."""

    digest: bytes
    signature: Signature


def dkg_session(tag: object = "boot") -> SessionId:
    return ("dkg", tag)


def reshare_session(epoch: int, tag: object = "reshare") -> SessionId:
    return ("reshare", tag, epoch)


@dataclass(frozen=True)
class DkgOutput:
    """What a completed session yields at one party.

    ``certificate`` is the transferable proof — ``((party, signature),
    ...)`` over the transcript digest from a quorum — and the
    verification maps / subshares are this party's view of the agreed
    keys (identical at every certifying party by construction).
    """

    qualified: tuple[int, ...]
    digest: bytes
    certificate: tuple
    verify_keys: dict[int, int]
    coin_verification: dict[SlotId, int]
    enc_verification: dict[SlotId, int]
    encryption_h: int
    coin_subshares: dict[SlotId, int]
    enc_subshares: dict[SlotId, int]


# ===========================================================================
# The shared verifiable-dealing chassis
# ===========================================================================


class _VerifiableDealing(Protocol):
    """Common machinery: RBC'd commits, complaints/defenses, certification.

    Subclasses define who deals, what a commit looks like, and how the
    output is assembled.  All decisions are functions of *sets* of
    received messages (iterated in sorted order), never of arrival
    order, so honest parties with the same message set reach the same
    verdicts.
    """

    def __init__(self) -> None:
        self.commits: dict[int, object] = {}
        self.excluded: set[int] = set()
        # dealer -> accusers whose complaint awaits a (valid) defense
        self.pending: dict[int, set[int]] = {}
        self.flushed = False
        self.statuses: dict[int, tuple] = {}
        self._my_complaints: set[int] = set()
        self._status_sent = False
        self._defended: set[int] = set()
        self._buffered_defenses: dict[int, list[DkgDefense]] = {}
        self._readies: dict[int, DkgReady] = {}
        self._digest: bytes | None = None
        self._qualified: tuple[int, ...] | None = None
        self._done = False

    # -- subclass surface --------------------------------------------------

    def _dealers(self, ctx: Context) -> tuple[int, ...]:
        raise NotImplementedError

    def _is_dealer(self, ctx: Context) -> bool:
        return ctx.party in self._dealers(ctx)

    def _is_receiver(self, ctx: Context) -> bool:
        return ctx.party in self._receivers(ctx)

    def _receivers(self, ctx: Context) -> tuple[int, ...]:
        raise NotImplementedError

    def _make_commit(self, ctx: Context) -> object:
        raise NotImplementedError

    def _commit_acceptable(self, value: object) -> bool:
        raise NotImplementedError

    def _absorb_commit(self, ctx: Context, dealer: int, commit: object) -> bool:
        """Unmask and verify my subshares; False triggers a complaint."""
        raise NotImplementedError

    def _defense_payload(self, ctx: Context, accuser: int) -> DkgDefense:
        raise NotImplementedError

    def _check_defense(
        self, ctx: Context, dealer: int, defense: DkgDefense
    ) -> bool:
        raise NotImplementedError

    def _qualified_ok(self, ctx: Context, qualified: tuple[int, ...]) -> bool:
        raise NotImplementedError

    def _transcript_extra(self, ctx: Context) -> object:
        return None

    def _ready_verify_key(self, ctx: Context, party: int) -> VerifyKey | None:
        raise NotImplementedError

    def _ready_quorum(self, ctx: Context, parties: frozenset[int]) -> bool:
        raise NotImplementedError

    def _make_output(
        self,
        ctx: Context,
        qualified: tuple[int, ...],
        digest: bytes,
        certificate: tuple,
    ) -> object:
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        for dealer in self._dealers(ctx):
            value = None
            if dealer == ctx.party:
                value = self._make_commit(ctx)
            ctx.spawn(
                rbc_session(dealer, ctx.session),
                ReliableBroadcast(
                    dealer, value=value, validate=self._commit_acceptable
                ),
                on_output=lambda commit, dealer=dealer: self._on_commit(
                    ctx, dealer, commit
                ),
            )

    def flush(self, ctx: Context) -> None:
        """Liveness hatch: stop waiting for unsettled dealers.

        The host calls this after its patience runs out; dealers whose
        commit never delivered, or who never answered a complaint, are
        expelled.  Hosts should flush on comparable timeouts — a party
        that flushes while another still waits can settle on a
        different qualified set, in which case no ready quorum forms
        and the session is retried under a fresh tag.
        """
        if self.flushed or self._digest is not None:
            return
        self.flushed = True
        self._maybe_ready(ctx)

    # -- message routing ---------------------------------------------------

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        if isinstance(message, DkgStatus):
            self._on_status(ctx, sender, message)
        elif isinstance(message, DkgDefense):
            self._on_defense(ctx, sender, message)
        elif isinstance(message, DkgReady):
            self._on_ready(ctx, sender, message)
        # anything else: Byzantine junk, ignored

    # -- commits -----------------------------------------------------------

    def _on_commit(self, ctx: Context, dealer: int, commit: object) -> None:
        if dealer in self.commits or dealer in self.excluded:
            return
        self.commits[dealer] = commit
        if self._is_receiver(ctx) and not self._absorb_commit(ctx, dealer, commit):
            self._my_complaints.add(dealer)
        for defense in self._buffered_defenses.pop(dealer, []):
            self._process_defense(ctx, dealer, defense)
        self._maybe_ready(ctx)

    # -- complaint statuses and defenses -----------------------------------

    def _on_status(self, ctx: Context, sender: int, message: DkgStatus) -> None:
        if sender in self.statuses or sender not in self._receivers(ctx):
            return
        complaints = message.complaints
        if not isinstance(complaints, tuple) or not all(
            isinstance(d, int) for d in complaints
        ):
            return
        self.statuses[sender] = complaints
        for dealer in sorted(set(complaints)):
            if dealer not in self._dealers(ctx):
                continue
            # Answering a complaint is a standing duty even after our
            # own transcript froze: the defense never changes *our*
            # qualified set, but it unblocks the accuser.
            if dealer == ctx.party and sender not in self._defended:
                self._defended.add(sender)
                ctx.broadcast(self._defense_payload(ctx, sender))
            if dealer in self.excluded or self._digest is not None:
                continue
            self.pending.setdefault(dealer, set()).add(sender)
        self._maybe_ready(ctx)

    def _on_defense(self, ctx: Context, sender: int, message: DkgDefense) -> None:
        # The network authenticates the sender, so only the dealer
        # itself can answer for its own sharing.
        if sender not in self._dealers(ctx) or sender in self.excluded:
            return
        if sender not in self.commits:
            self._buffered_defenses.setdefault(sender, []).append(message)
            return
        self._process_defense(ctx, sender, message)

    def _process_defense(
        self, ctx: Context, dealer: int, defense: DkgDefense
    ) -> None:
        if self._digest is not None or dealer in self.excluded:
            return
        if not isinstance(defense.accuser, int):
            return
        if self._check_defense(ctx, dealer, defense):
            self.pending.get(dealer, set()).discard(defense.accuser)
        else:
            self._exclude(dealer)
        self._maybe_ready(ctx)

    def _exclude(self, dealer: int) -> None:
        self.excluded.add(dealer)
        self.pending.pop(dealer, None)

    # -- settlement and certification --------------------------------------

    def _maybe_ready(self, ctx: Context) -> None:
        if self._digest is not None or self._done or not self._is_receiver(ctx):
            return
        dealers = self._dealers(ctx)
        undelivered = [
            d
            for d in dealers
            if d not in self.excluded and d not in self.commits
        ]
        if undelivered:
            if not self.flushed:
                return
            for dealer in undelivered:
                self._exclude(dealer)
        # Commit phase settled locally: announce our complaint set, once.
        if not self._status_sent:
            self._status_sent = True
            complaints = tuple(sorted(self._my_complaints - self.excluded))
            self.statuses[ctx.party] = complaints
            for dealer in complaints:
                self.pending.setdefault(dealer, set()).add(ctx.party)
            ctx.broadcast(DkgStatus(complaints=complaints))
        # The complaint round: wait for every receiver's status (the
        # flush hatch covers crashed receivers) ...
        if not self.flushed and any(
            r not in self.statuses for r in self._receivers(ctx)
        ):
            return
        # ... and for every voiced complaint to be defended or fatal.
        unresolved = [
            d
            for d in dealers
            if d not in self.excluded and self.pending.get(d)
        ]
        if unresolved:
            if not self.flushed:
                return
            for dealer in unresolved:
                self._exclude(dealer)
        qualified = tuple(
            d for d in dealers if d not in self.excluded and d in self.commits
        )
        if not self._qualified_ok(ctx, qualified):
            return  # unusable qualified set: stall, host retries fresh
        self._qualified = qualified
        self._digest = hash_bytes(
            "dkg-transcript",
            ctx.session,
            qualified,
            [self.commits[d] for d in qualified],
            self._transcript_extra(ctx),
        )
        signature = ctx.keys.signing_key.sign(
            ("dkg-ready", ctx.session, self._digest), ctx.rng
        )
        ctx.broadcast(DkgReady(digest=self._digest, signature=signature))
        self._maybe_complete(ctx)

    def _on_ready(self, ctx: Context, sender: int, message: DkgReady) -> None:
        if sender in self._readies or not isinstance(message.digest, bytes):
            return
        self._readies[sender] = message
        self._maybe_complete(ctx)

    def _maybe_complete(self, ctx: Context) -> None:
        if self._done or self._digest is None or self._qualified is None:
            return
        matching: dict[int, Signature] = {}
        for party in sorted(self._readies):
            ready = self._readies[party]
            if ready.digest != self._digest:
                continue
            key = self._ready_verify_key(ctx, party)
            if key is None or not key.verify(
                ("dkg-ready", ctx.session, self._digest), ready.signature
            ):
                continue
            matching[party] = ready.signature
        if not self._ready_quorum(ctx, frozenset(matching)):
            return
        self._done = True
        certificate = tuple(
            (party, matching[party]) for party in sorted(matching)
        )
        ctx.output(
            self._make_output(ctx, self._qualified, self._digest, certificate)
        )


def _table_wellformed(table: object, slots: set[SlotId], modulus: int) -> bool:
    """A masked table must cover exactly ``slots`` with reduced values."""
    if not isinstance(table, tuple) or len(table) != len(slots):
        return False
    seen = set()
    for entry in table:
        if not (isinstance(entry, tuple) and len(entry) == 2):
            return False
        slot, value = entry
        if slot not in slots or slot in seen:
            return False
        if not isinstance(value, int) or not 0 <= value < modulus:
            return False
        seen.add(slot)
    return True


def _values_wellformed(values: object, slots: list[SlotId], modulus: int) -> bool:
    """Defense values must cover exactly the accuser's slots."""
    return _table_wellformed(values, set(slots), modulus)


# ===========================================================================
# Distributed key generation
# ===========================================================================


class DistributedKeyGeneration(_VerifiableDealing):
    """One dealerless key-generation session at ``("dkg", tag)``.

    Runs on a *bootstrap* runtime (:class:`BootstrapPublic` /
    :class:`BootstrapKeys`): no threshold keys exist yet.  Every party
    deals a random coin contribution and a random encryption
    contribution along ``scheme``; the output sums the qualified
    contributions into key material assembled via
    :func:`build_public_keys` / :func:`build_party_keys` — drop-in
    compatible with the dealer's bundles and the keystore format.
    """

    def __init__(self, group: SchnorrGroup, scheme: LsssScheme) -> None:
        super().__init__()
        if scheme.modulus != group.q:
            raise ValueError("LSSS must be over Z_q of the group")
        self.group = group
        self.scheme = scheme
        self._coin_sharing: LsssSharing | None = None
        self._enc_sharing: LsssSharing | None = None
        # dealer -> my verified subshares of that dealer's contribution
        self._coin_received: dict[int, dict[SlotId, int]] = {}
        self._enc_received: dict[int, dict[SlotId, int]] = {}

    # -- chassis hooks -----------------------------------------------------

    def _dealers(self, ctx: Context) -> tuple[int, ...]:
        return tuple(range(ctx.n))

    def _receivers(self, ctx: Context) -> tuple[int, ...]:
        return tuple(range(ctx.n))

    def _make_commit(self, ctx: Context) -> DkgCommit:
        group = self.group
        self._coin_sharing, coin_tree = deal_verifiable(
            group, self.scheme, group.random_exponent(ctx.rng), ctx.rng
        )
        self._enc_sharing, enc_tree = deal_verifiable(
            group, self.scheme, group.random_exponent(ctx.rng), ctx.rng
        )
        return DkgCommit(
            verify_key=ctx.keys.signing_key.verify_key.h,
            coin_tree=coin_tree,
            enc_tree=enc_tree,
            masked_coin=self._mask_table(ctx, self._coin_sharing, "coin"),
            masked_enc=self._mask_table(ctx, self._enc_sharing, "enc"),
        )

    def _mask_table(
        self, ctx: Context, sharing: LsssSharing, kind: str
    ) -> tuple:
        entries = []
        for slot, value in sorted(sharing.all_slots().items()):
            owner = self.scheme.slot_owner(slot)
            pad = _pad(
                self.group,
                _mask_key(ctx.keys, owner),
                ctx.session,
                ctx.party,
                owner,
                kind,
                slot,
            )
            entries.append((slot, (value + pad) % self.group.q))
        return tuple(entries)

    def _commit_acceptable(self, value: object) -> bool:
        if not isinstance(value, DkgCommit):
            return False
        if not isinstance(value.verify_key, int) or not self.group.is_member(
            value.verify_key
        ):
            return False
        if not tree_consistent(self.group, self.scheme, value.coin_tree):
            return False
        if not tree_consistent(self.group, self.scheme, value.enc_tree):
            return False
        slots = {slot for slot, _ in self.scheme.slots()}
        return _table_wellformed(
            value.masked_coin, slots, self.group.q
        ) and _table_wellformed(value.masked_enc, slots, self.group.q)

    def _absorb_commit(self, ctx: Context, dealer: int, commit: object) -> bool:
        assert isinstance(commit, DkgCommit)
        ok = True
        for kind, table, tree, store in (
            ("coin", commit.masked_coin, commit.coin_tree, self._coin_received),
            ("enc", commit.masked_enc, commit.enc_tree, self._enc_received),
        ):
            masked = dict(table)
            commitments = tree_commitments(tree)
            mine: dict[SlotId, int] = {}
            for slot in sorted(self.scheme.slots_of_party(ctx.party)):
                pad = _pad(
                    self.group,
                    _mask_key(ctx.keys, dealer),
                    ctx.session,
                    dealer,
                    ctx.party,
                    kind,
                    slot,
                )
                value = (masked[slot] - pad) % self.group.q
                if self.group.power_of_g(value) == slot_commitment(
                    self.group, commitments, slot
                ):
                    mine[slot] = value
                else:
                    ok = False
            store[dealer] = mine
        return ok

    def _defense_payload(self, ctx: Context, accuser: int) -> DkgDefense:
        assert self._coin_sharing is not None and self._enc_sharing is not None
        return DkgDefense(
            accuser=accuser,
            coin_values=tuple(
                sorted(self._coin_sharing.share_of(accuser).items())
            ),
            enc_values=tuple(sorted(self._enc_sharing.share_of(accuser).items())),
        )

    def _check_defense(
        self, ctx: Context, dealer: int, defense: DkgDefense
    ) -> bool:
        commit = self.commits[dealer]
        assert isinstance(commit, DkgCommit)
        accuser_slots = sorted(self.scheme.slots_of_party(defense.accuser))
        for values, tree in (
            (defense.coin_values, commit.coin_tree),
            (defense.enc_values, commit.enc_tree),
        ):
            if not _values_wellformed(values, accuser_slots, self.group.q):
                return False
            commitments = tree_commitments(tree)
            for slot, value in values:
                if self.group.power_of_g(value) != slot_commitment(
                    self.group, commitments, slot
                ):
                    return False
        if defense.accuser == ctx.party:
            # The defense both clears the dealer and re-supplies us;
            # the values just verified, so adopt them.
            self._coin_received[dealer] = dict(defense.coin_values)
            self._enc_received[dealer] = dict(defense.enc_values)
        return True

    def _qualified_ok(self, ctx: Context, qualified: tuple[int, ...]) -> bool:
        # Secrecy needs at least one honest contribution in the sum.
        return ctx.quorum.contains_honest(frozenset(qualified))

    def _ready_verify_key(self, ctx: Context, party: int) -> VerifyKey | None:
        commit = self.commits.get(party)
        if not isinstance(commit, DkgCommit):
            return None
        return VerifyKey(group=self.group, h=commit.verify_key)

    def _ready_quorum(self, ctx: Context, parties: frozenset[int]) -> bool:
        return ctx.quorum.is_quorum(parties)

    def _make_output(
        self,
        ctx: Context,
        qualified: tuple[int, ...],
        digest: bytes,
        certificate: tuple,
    ) -> DkgOutput:
        group = self.group
        coin_verification: dict[SlotId, int] = {}
        enc_verification: dict[SlotId, int] = {}
        for slot, _ in self.scheme.slots():
            coin_verification[slot] = group.multiexp(
                (
                    slot_commitment(
                        group,
                        tree_commitments(self.commits[d].coin_tree),
                        slot,
                    ),
                    1,
                )
                for d in qualified
            )
            enc_verification[slot] = group.multiexp(
                (
                    slot_commitment(
                        group,
                        tree_commitments(self.commits[d].enc_tree),
                        slot,
                    ),
                    1,
                )
                for d in qualified
            )
        encryption_h = group.multiexp(
            (secret_commitment(self.commits[d].enc_tree), 1) for d in qualified
        )
        my_slots = sorted(self.scheme.slots_of_party(ctx.party))
        coin_subshares = {
            slot: sum(self._coin_received[d][slot] for d in qualified) % group.q
            for slot in my_slots
        }
        enc_subshares = {
            slot: sum(self._enc_received[d][slot] for d in qualified) % group.q
            for slot in my_slots
        }
        return DkgOutput(
            qualified=qualified,
            digest=digest,
            certificate=certificate,
            verify_keys={d: self.commits[d].verify_key for d in qualified},
            coin_verification=coin_verification,
            enc_verification=enc_verification,
            encryption_h=encryption_h,
            coin_subshares=coin_subshares,
            enc_subshares=enc_subshares,
        )


# ===========================================================================
# Verifiable resharing (epoch reconfiguration)
# ===========================================================================


class VerifiableResharing(_VerifiableDealing):
    """Move an existing sharing onto a new access structure/membership.

    Every old shareholder reshares each of its old subshares along the
    *new* formula, with the commitment tree's root pinned to the old
    public verification value — so the resharing provably deals the old
    subshare and nothing else.  New members collect commits from a set
    ``U`` of old dealers that is qualified under the OLD scheme and
    take ``Σ_s λ^U_s · reshare_s`` as their new subshares, where λ are
    the old scheme's recombination coefficients for ``U``.  Agreement
    on ``U`` is what the ready certification settles: coefficients
    depend on ``U``, so parties mixing different dealer sets would hold
    an inconsistent sharing.

    The session runs on the OLD epoch's runtime (old quorum rules drive
    reliable broadcast); readies are signed by NEW members and complete
    under the NEW quorum system, so the certificate convinces the next
    epoch.  A joining member participates with a bootstrap bundle; a
    departing member deals but receives nothing, and its old subshares
    are useless against the freshly randomized new verification values.
    """

    def __init__(
        self,
        group: SchnorrGroup,
        old_scheme: LsssScheme,
        new_scheme: LsssScheme,
        old_coin_verification: dict[SlotId, int],
        old_enc_verification: dict[SlotId, int],
        new_members: tuple[int, ...],
        new_quorum: QuorumSystem,
        new_verify_keys: dict[int, int],
        old_coin_subshares: dict[SlotId, int] | None = None,
        old_enc_subshares: dict[SlotId, int] | None = None,
    ) -> None:
        super().__init__()
        if old_scheme.modulus != group.q or new_scheme.modulus != group.q:
            raise ValueError("LSSS must be over Z_q of the group")
        self.group = group
        self.old_scheme = old_scheme
        self.new_scheme = new_scheme
        self.old_coin_verification = dict(old_coin_verification)
        self.old_enc_verification = dict(old_enc_verification)
        self.new_members = tuple(sorted(new_members))
        self.new_quorum = new_quorum
        self.new_verify_keys = dict(new_verify_keys)
        self.old_coin_subshares = dict(old_coin_subshares or {})
        self.old_enc_subshares = dict(old_enc_subshares or {})
        self._dealt: dict[tuple[str, SlotId], LsssSharing] = {}
        # dealer -> old_slot -> my verified new subshares of that resharing
        self._coin_received: dict[int, dict[SlotId, dict[SlotId, int]]] = {}
        self._enc_received: dict[int, dict[SlotId, dict[SlotId, int]]] = {}
        self._lambda: dict[SlotId, int] | None = None

    # -- chassis hooks -----------------------------------------------------

    def _dealers(self, ctx: Context) -> tuple[int, ...]:
        return tuple(
            sorted({party for _, party in self.old_scheme.slots()})
        )

    def _receivers(self, ctx: Context) -> tuple[int, ...]:
        return self.new_members

    def _make_commit(self, ctx: Context) -> ReshareCommit:
        coin_entries = []
        enc_entries = []
        for kind, subshares, entries in (
            ("coin", self.old_coin_subshares, coin_entries),
            ("enc", self.old_enc_subshares, enc_entries),
        ):
            for old_slot in sorted(self.old_scheme.slots_of_party(ctx.party)):
                sharing, tree = deal_verifiable(
                    self.group, self.new_scheme, subshares[old_slot], ctx.rng
                )
                self._dealt[(kind, old_slot)] = sharing
                entries.append(
                    (
                        old_slot,
                        tree,
                        self._mask_table(ctx, sharing, kind, old_slot),
                    )
                )
        return ReshareCommit(coin=tuple(coin_entries), enc=tuple(enc_entries))

    def _mask_table(
        self, ctx: Context, sharing: LsssSharing, kind: str, old_slot: SlotId
    ) -> tuple:
        entries = []
        for new_slot, value in sorted(sharing.all_slots().items()):
            owner = self.new_scheme.slot_owner(new_slot)
            pad = _pad(
                self.group,
                _mask_key(ctx.keys, owner),
                ctx.session,
                ctx.party,
                owner,
                kind,
                (old_slot, new_slot),
            )
            entries.append((new_slot, (value + pad) % self.group.q))
        return tuple(entries)

    def _entries_acceptable(
        self, entries: object, verification: dict[SlotId, int]
    ) -> set[SlotId] | None:
        """Structural check of one kind's entries; returns the old slots."""
        if not isinstance(entries, tuple):
            return None
        new_slots = {slot for slot, _ in self.new_scheme.slots()}
        seen: set[SlotId] = set()
        for entry in entries:
            if not (isinstance(entry, tuple) and len(entry) == 3):
                return None
            old_slot, tree, table = entry
            if old_slot not in verification or old_slot in seen:
                return None
            if not tree_consistent(
                self.group,
                self.new_scheme,
                tree,
                root=verification[old_slot],
            ):
                return None
            if not _table_wellformed(table, new_slots, self.group.q):
                return None
            seen.add(old_slot)
        return seen

    def _commit_acceptable(self, value: object) -> bool:
        if not isinstance(value, ReshareCommit):
            return False
        coin_slots = self._entries_acceptable(
            value.coin, self.old_coin_verification
        )
        enc_slots = self._entries_acceptable(value.enc, self.old_enc_verification)
        if coin_slots is None or enc_slots is None:
            return False
        # All reshared slots must belong to one old party, completely
        # (which party is checked against the RBC sender on delivery).
        owners = {self.old_scheme.slot_owner(slot) for slot in coin_slots} | {
            self.old_scheme.slot_owner(slot) for slot in enc_slots
        }
        if len(owners) != 1:
            return False
        owner = next(iter(owners))
        expected = set(self.old_scheme.slots_of_party(owner))
        return coin_slots == expected and enc_slots == expected

    def _absorb_commit(self, ctx: Context, dealer: int, commit: object) -> bool:
        assert isinstance(commit, ReshareCommit)
        expected = set(self.old_scheme.slots_of_party(dealer))
        if {slot for slot, _, _ in commit.coin} != expected:
            # Consistent, pinned — but resharing someone ELSE's slots.
            # Reliable broadcast delivered the same commit everywhere,
            # so this exclusion is deterministic too.
            self._exclude(dealer)
            return True
        ok = True
        for kind, entries, store in (
            ("coin", commit.coin, self._coin_received),
            ("enc", commit.enc, self._enc_received),
        ):
            received = store.setdefault(dealer, {})
            for old_slot, tree, table in entries:
                masked = dict(table)
                commitments = tree_commitments(tree)
                mine: dict[SlotId, int] = {}
                for new_slot in sorted(
                    self.new_scheme.slots_of_party(ctx.party)
                ):
                    pad = _pad(
                        self.group,
                        _mask_key(ctx.keys, dealer),
                        ctx.session,
                        dealer,
                        ctx.party,
                        kind,
                        (old_slot, new_slot),
                    )
                    value = (masked[new_slot] - pad) % self.group.q
                    if self.group.power_of_g(value) == slot_commitment(
                        self.group, commitments, new_slot
                    ):
                        mine[new_slot] = value
                    else:
                        ok = False
                received[old_slot] = mine
        return ok

    def _defense_payload(self, ctx: Context, accuser: int) -> DkgDefense:
        def values(kind: str) -> tuple:
            entries = []
            for old_slot in sorted(self.old_scheme.slots_of_party(ctx.party)):
                sharing = self._dealt[(kind, old_slot)]
                entries.append(
                    (old_slot, tuple(sorted(sharing.share_of(accuser).items())))
                )
            return tuple(entries)

        return DkgDefense(
            accuser=accuser, coin_values=values("coin"), enc_values=values("enc")
        )

    def _check_defense(
        self, ctx: Context, dealer: int, defense: DkgDefense
    ) -> bool:
        commit = self.commits[dealer]
        assert isinstance(commit, ReshareCommit)
        accuser_slots = sorted(self.new_scheme.slots_of_party(defense.accuser))
        old_slots = sorted(self.old_scheme.slots_of_party(dealer))
        adopted: dict[str, dict[SlotId, dict[SlotId, int]]] = {
            "coin": {},
            "enc": {},
        }
        for kind, values, entries in (
            ("coin", defense.coin_values, commit.coin),
            ("enc", defense.enc_values, commit.enc),
        ):
            if not isinstance(values, tuple) or len(values) != len(old_slots):
                return False
            trees = {old_slot: tree for old_slot, tree, _ in entries}
            seen: set[SlotId] = set()
            for entry in values:
                if not (isinstance(entry, tuple) and len(entry) == 2):
                    return False
                old_slot, slot_values = entry
                if old_slot not in trees or old_slot in seen:
                    return False
                seen.add(old_slot)
                if not _values_wellformed(
                    slot_values, accuser_slots, self.group.q
                ):
                    return False
                commitments = tree_commitments(trees[old_slot])
                for new_slot, value in slot_values:
                    if self.group.power_of_g(value) != slot_commitment(
                        self.group, commitments, new_slot
                    ):
                        return False
                adopted[kind][old_slot] = dict(slot_values)
        if defense.accuser == ctx.party:
            self._coin_received[dealer] = adopted["coin"]
            self._enc_received[dealer] = adopted["enc"]
        return True

    def _qualified_ok(self, ctx: Context, qualified: tuple[int, ...]) -> bool:
        lam = self.old_scheme.recombination(frozenset(qualified))
        if lam is None:
            return False
        self._lambda = lam
        return True

    def _transcript_extra(self, ctx: Context) -> object:
        return (
            self.new_members,
            tuple(sorted(self.new_verify_keys.items())),
        )

    def _ready_verify_key(self, ctx: Context, party: int) -> VerifyKey | None:
        h = self.new_verify_keys.get(party)
        if h is None:
            return None
        return VerifyKey(group=self.group, h=h)

    def _ready_quorum(self, ctx: Context, parties: frozenset[int]) -> bool:
        return self.new_quorum.is_quorum(parties)

    def _make_output(
        self,
        ctx: Context,
        qualified: tuple[int, ...],
        digest: bytes,
        certificate: tuple,
    ) -> DkgOutput:
        group = self.group
        assert self._lambda is not None
        lam = self._lambda

        def trees_for(kind: str) -> dict[SlotId, dict[SlotId, tuple[int, ...]]]:
            trees: dict[SlotId, dict[SlotId, tuple[int, ...]]] = {}
            for dealer in qualified:
                commit = self.commits[dealer]
                assert isinstance(commit, ReshareCommit)
                entries = commit.coin if kind == "coin" else commit.enc
                for old_slot, tree, _ in entries:
                    trees[old_slot] = tree_commitments(tree)
            return trees

        coin_trees = trees_for("coin")
        enc_trees = trees_for("enc")
        coin_verification: dict[SlotId, int] = {}
        enc_verification: dict[SlotId, int] = {}
        for new_slot, _ in self.new_scheme.slots():
            coin_verification[new_slot] = group.multiexp(
                (
                    slot_commitment(group, coin_trees[old_slot], new_slot),
                    coeff,
                )
                for old_slot, coeff in sorted(lam.items())
            )
            enc_verification[new_slot] = group.multiexp(
                (slot_commitment(group, enc_trees[old_slot], new_slot), coeff)
                for old_slot, coeff in sorted(lam.items())
            )
        encryption_h = group.multiexp(
            (enc_trees[old_slot][()][0], coeff)
            for old_slot, coeff in sorted(lam.items())
        )
        my_slots = sorted(self.new_scheme.slots_of_party(ctx.party))

        def combine(
            received: dict[int, dict[SlotId, dict[SlotId, int]]],
        ) -> dict[SlotId, int]:
            owner_of = dict(self.old_scheme.slots())
            out: dict[SlotId, int] = {}
            for new_slot in my_slots:
                total = 0
                for old_slot, coeff in sorted(lam.items()):
                    dealer = owner_of[old_slot]
                    total += coeff * received[dealer][old_slot][new_slot]
                out[new_slot] = total % group.q
            return out

        return DkgOutput(
            qualified=qualified,
            digest=digest,
            certificate=certificate,
            verify_keys=dict(self.new_verify_keys),
            coin_verification=coin_verification,
            enc_verification=enc_verification,
            encryption_h=encryption_h,
            coin_subshares=combine(self._coin_received),
            enc_subshares=combine(self._enc_received),
        )


# ===========================================================================
# Key assembly (dealer-compatible bundles)
# ===========================================================================


def build_public_keys(
    group: SchnorrGroup,
    scheme: LsssScheme,
    quorum: QuorumSystem,
    n: int,
    output: DkgOutput,
) -> PublicKeys:
    """Assemble a dealer-compatible :class:`PublicKeys` from a DKG or
    resharing output.

    Parties outside the qualified set hold no verify key here: an
    expelled contributor is ejected from every certificate and
    signature scheme, though it keeps its member id (graceful
    degradation — the quorum rules already tolerate it as corrupted).
    """
    verify_keys = {
        party: VerifyKey(group=group, h=h)
        for party, h in sorted(output.verify_keys.items())
    }
    coin = CoinPublic(
        group=group, scheme=scheme, verification=dict(output.coin_verification)
    )
    encryption = EncryptionPublic(
        group=group,
        scheme=scheme,
        h=output.encryption_h,
        g_bar=hash_to_group(group, "tdh2-gbar", "second generator"),
        verification=dict(output.enc_verification),
    )
    return PublicKeys(
        n=n,
        group=group,
        quorum=quorum,
        access_scheme=scheme,
        coin=coin,
        encryption=encryption,
        verify_keys=verify_keys,
        cert_quorum=QuorumCertScheme(
            verify_keys=verify_keys, qualifier=quorum.is_quorum, tag="cert-quorum"
        ),
        cert_honest=QuorumCertScheme(
            verify_keys=verify_keys,
            qualifier=quorum.contains_honest,
            tag="cert-honest",
        ),
        cert_strong=QuorumCertScheme(
            verify_keys=verify_keys,
            qualifier=quorum.is_strong_quorum,
            tag="cert-strong",
        ),
        service_signature=QuorumCertScheme(
            verify_keys=verify_keys,
            qualifier=quorum.contains_honest,
            tag="service-signature",
        ),
    )


def build_party_keys(
    party: int,
    public: PublicKeys,
    signing_key: SigningKey,
    output: DkgOutput,
    channel_keys: dict[int, bytes] | None = None,
) -> PartyKeys:
    """Assemble this party's dealer-compatible :class:`PartyKeys`."""
    service = public.service_signature
    if not isinstance(service, QuorumCertScheme):
        raise ValueError("dealerless setups use the certificate backend")
    return PartyKeys(
        party=party,
        signing_key=signing_key,
        coin=CoinShareholder(
            party=party, public=public.coin, subshares=dict(output.coin_subshares)
        ),
        decryption=DecryptionShareholder(
            party=party,
            public=public.encryption,
            subshares=dict(output.enc_subshares),
        ),
        cert_quorum=QuorumCertShareholder(
            party=party, public=public.cert_quorum, key=signing_key
        ),
        cert_honest=QuorumCertShareholder(
            party=party, public=public.cert_honest, key=signing_key
        ),
        cert_strong=QuorumCertShareholder(
            party=party, public=public.cert_strong, key=signing_key
        ),
        service_signer=QuorumCertShareholder(
            party=party, public=service, key=signing_key
        ),
        channel_keys=dict(channel_keys or {}),
    )
