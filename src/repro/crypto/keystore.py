"""Persisting and distributing the dealer's output.

The trusted dealer runs *once* (Section 2); in any real deployment its
output must then be carried to the servers — the public bundle to
everyone (including clients), and each server's private bundle over a
secure channel.  This module serializes both to plain JSON:

* no pickle — loading reconstructs only the known key dataclasses;
* integers are decimal strings (arbitrary precision survives JSON);
* the quorum system round-trips by *kind* (threshold / hybrid /
  general / explicit maximal sets) and the access structure by its
  monotone formula, so generalized deployments persist faithfully.

Typical flow::

    keys = deal_system(4, rng, t=1)
    write_deployment(keys, directory)        # public.json + server-i.json
    public = load_public(directory / "public.json")
    mine = load_party(directory / "server-2.json", public)
"""

from __future__ import annotations

import json
import os
import pathlib

from ..adversary.formulas import Formula, Leaf, Threshold
from ..adversary.hybrid import HybridQuorumSystem
from ..adversary.quorums import (
    GeneralQuorumSystem,
    QuorumSystem,
    ThresholdQuorumSystem,
)
from ..adversary.structures import AdversaryStructure
from .coin import CoinPublic, CoinShareholder
from .dealer import PartyKeys, PublicKeys, SystemKeys
from .groups import SchnorrGroup
from .lsss import LsssScheme
from .schnorr import SigningKey, VerifyKey
from .threshold_enc import DecryptionShareholder, EncryptionPublic
from .threshold_sig import (
    QuorumCertScheme,
    QuorumCertShareholder,
    ShoupRsaScheme,
    ShoupRsaShareholder,
)

__all__ = [
    "KeystoreError",
    "public_to_dict",
    "public_from_dict",
    "party_to_dict",
    "party_from_dict",
    "client_to_dict",
    "client_from_dict",
    "atomic_write_text",
    "write_deployment",
    "load_public",
    "load_party",
    "load_client",
]

_VERSION = 1


class KeystoreError(ValueError):
    """Malformed or incompatible keystore data."""


# -- low-level helpers -------------------------------------------------------


def _slot_key(slot: tuple) -> str:
    return ".".join(str(i) for i in slot) if slot else "-"


def _slot_from_key(key: str) -> tuple:
    if key == "-":
        return ()
    return tuple(int(part) for part in key.split("."))


def _int_map(mapping: dict) -> dict:
    return {str(k): str(v) for k, v in mapping.items()}


def _int_map_back(data: dict) -> dict[int, int]:
    return {int(k): int(v) for k, v in data.items()}


def _formula_to_json(formula: Formula) -> object:
    if isinstance(formula, Leaf):
        return {"leaf": formula.party}
    if isinstance(formula, Threshold):
        return {
            "k": formula.k,
            "children": [_formula_to_json(c) for c in formula.children],
        }
    raise KeystoreError(f"unknown formula node {type(formula).__name__}")


def _formula_from_json(data: object) -> Formula:
    if not isinstance(data, dict):
        raise KeystoreError("malformed formula node")
    if "leaf" in data:
        return Leaf(int(data["leaf"]))
    if "k" in data and "children" in data:
        children = tuple(_formula_from_json(c) for c in data["children"])
        return Threshold(k=int(data["k"]), children=children)
    raise KeystoreError("malformed formula node")


def _quorum_to_json(quorum: QuorumSystem) -> dict:
    if isinstance(quorum, ThresholdQuorumSystem):
        return {"kind": "threshold", "n": quorum.n, "t": quorum.t}
    if isinstance(quorum, HybridQuorumSystem):
        return {"kind": "hybrid", "n": quorum.n, "b": quorum.b, "c": quorum.c}
    if isinstance(quorum, GeneralQuorumSystem):
        return {
            "kind": "general",
            "n": quorum.structure.n,
            "threshold": quorum.structure.threshold,
            "maximal_sets": [sorted(s) for s in quorum.structure.maximal_sets],
        }
    raise KeystoreError(f"unknown quorum system {type(quorum).__name__}")


def _quorum_from_json(data: dict) -> QuorumSystem:
    kind = data.get("kind")
    if kind == "threshold":
        return ThresholdQuorumSystem(n=int(data["n"]), t=int(data["t"]))
    if kind == "hybrid":
        return HybridQuorumSystem(n=int(data["n"]), b=int(data["b"]), c=int(data["c"]))
    if kind == "general":
        structure = AdversaryStructure(
            n=int(data["n"]),
            maximal_sets=tuple(frozenset(s) for s in data["maximal_sets"]),
            threshold=data.get("threshold"),
        )
        return GeneralQuorumSystem(structure=structure)
    raise KeystoreError(f"unknown quorum kind {kind!r}")


# -- public bundle -------------------------------------------------------------


def public_to_dict(public: PublicKeys) -> dict:
    """Serialize the public bundle (safe to hand to anyone)."""
    service = public.service_signature
    if isinstance(service, ShoupRsaScheme):
        service_json: dict = {
            "kind": "rsa",
            "n_parties": service.n_parties,
            "k": service.k,
            "n_modulus": str(service.n_modulus),
            "e": str(service.e),
            "v": str(service.v),
            "v_keys": _int_map(service.v_keys),
        }
    elif isinstance(service, QuorumCertScheme):
        service_json = {"kind": "certs", "tag": service.tag}
    else:
        raise KeystoreError("unknown service signature scheme")
    return {
        "version": _VERSION,
        "n": public.n,
        "group": {
            "p": str(public.group.p),
            "q": str(public.group.q),
            "g": str(public.group.g),
        },
        "quorum": _quorum_to_json(public.quorum),
        "access_formula": _formula_to_json(public.access_scheme.formula),
        "coin_verification": {
            _slot_key(slot): str(value)
            for slot, value in public.coin.verification.items()
        },
        "encryption": {
            "h": str(public.encryption.h),
            "g_bar": str(public.encryption.g_bar),
            "verification": {
                _slot_key(slot): str(value)
                for slot, value in public.encryption.verification.items()
            },
        },
        "verify_keys": _int_map({i: k.h for i, k in public.verify_keys.items()}),
        "service_signature": service_json,
    }


def public_from_dict(data: dict) -> PublicKeys:
    """Rebuild the public bundle; raises :class:`KeystoreError` if bad."""
    if data.get("version") != _VERSION:
        raise KeystoreError(f"unsupported keystore version {data.get('version')!r}")
    group = SchnorrGroup(
        p=int(data["group"]["p"]),
        q=int(data["group"]["q"]),
        g=int(data["group"]["g"]),
    )
    quorum = _quorum_from_json(data["quorum"])
    formula = _formula_from_json(data["access_formula"])
    scheme = LsssScheme(formula=formula, modulus=group.q)
    coin = CoinPublic(
        group=group,
        scheme=scheme,
        verification={
            _slot_from_key(k): int(v)
            for k, v in data["coin_verification"].items()
        },
    )
    encryption = EncryptionPublic(
        group=group,
        scheme=scheme,
        h=int(data["encryption"]["h"]),
        g_bar=int(data["encryption"]["g_bar"]),
        verification={
            _slot_from_key(k): int(v)
            for k, v in data["encryption"]["verification"].items()
        },
    )
    verify_keys = {
        int(i): VerifyKey(group=group, h=int(h))
        for i, h in data["verify_keys"].items()
    }
    cert_quorum = QuorumCertScheme(
        verify_keys=verify_keys, qualifier=quorum.is_quorum, tag="cert-quorum"
    )
    cert_honest = QuorumCertScheme(
        verify_keys=verify_keys, qualifier=quorum.contains_honest, tag="cert-honest"
    )
    cert_strong = QuorumCertScheme(
        verify_keys=verify_keys, qualifier=quorum.is_strong_quorum, tag="cert-strong"
    )
    service_json = data["service_signature"]
    if service_json["kind"] == "rsa":
        service: ShoupRsaScheme | QuorumCertScheme = ShoupRsaScheme(
            n_parties=int(service_json["n_parties"]),
            k=int(service_json["k"]),
            n_modulus=int(service_json["n_modulus"]),
            e=int(service_json["e"]),
            v=int(service_json["v"]),
            v_keys=_int_map_back(service_json["v_keys"]),
        )
    elif service_json["kind"] == "certs":
        service = QuorumCertScheme(
            verify_keys=verify_keys,
            qualifier=quorum.contains_honest,
            tag=service_json["tag"],
        )
    else:
        raise KeystoreError("unknown service signature kind")
    return PublicKeys(
        n=int(data["n"]),
        group=group,
        quorum=quorum,
        access_scheme=scheme,
        coin=coin,
        encryption=encryption,
        verify_keys=verify_keys,
        cert_quorum=cert_quorum,
        cert_honest=cert_honest,
        cert_strong=cert_strong,
        service_signature=service,
    )


# -- private bundles -------------------------------------------------------------


def party_to_dict(party: PartyKeys) -> dict:
    """Serialize one server's secret bundle (distribute over a secure
    channel; possession of this file IS the server identity)."""
    signer = party.service_signer
    if isinstance(signer, ShoupRsaShareholder):
        service_json: dict = {"kind": "rsa", "party": signer.party, "s": str(signer.s)}
    elif isinstance(signer, QuorumCertShareholder):
        service_json = {"kind": "certs"}
    else:
        raise KeystoreError("unknown service signer")
    return {
        "version": _VERSION,
        "party": party.party,
        "signing_key": str(party.signing_key.x),
        "coin_subshares": {
            _slot_key(slot): str(value)
            for slot, value in party.coin.subshares.items()
        },
        "decryption_subshares": {
            _slot_key(slot): str(value)
            for slot, value in party.decryption.subshares.items()
        },
        "service_signer": service_json,
        "channel_keys": _channel_keys_to_json(party.channel_keys),
    }


def _channel_keys_to_json(channel_keys: dict[int, bytes]) -> dict:
    return {str(peer): key.hex() for peer, key in channel_keys.items()}


def _channel_keys_from_json(data: object) -> dict[int, bytes]:
    if data is None:
        return {}  # pre-transport bundles carried no channel keys
    if not isinstance(data, dict):
        raise KeystoreError("malformed channel keys")
    try:
        return {int(peer): bytes.fromhex(key) for peer, key in data.items()}
    except (TypeError, ValueError) as exc:
        raise KeystoreError("malformed channel keys") from exc


def party_from_dict(data: dict, public: PublicKeys) -> PartyKeys:
    """Rebuild a server's secret bundle against a loaded public bundle."""
    if data.get("version") != _VERSION:
        raise KeystoreError(f"unsupported keystore version {data.get('version')!r}")
    party = int(data["party"])
    signing_key = SigningKey(group=public.group, x=int(data["signing_key"]))
    coin = CoinShareholder(
        party=party,
        public=public.coin,
        subshares={
            _slot_from_key(k): int(v)
            for k, v in data["coin_subshares"].items()
        },
    )
    decryption = DecryptionShareholder(
        party=party,
        public=public.encryption,
        subshares={
            _slot_from_key(k): int(v)
            for k, v in data["decryption_subshares"].items()
        },
    )
    cert_quorum = QuorumCertShareholder(
        party=party, public=public.cert_quorum, key=signing_key
    )
    cert_honest = QuorumCertShareholder(
        party=party, public=public.cert_honest, key=signing_key
    )
    cert_strong = QuorumCertShareholder(
        party=party, public=public.cert_strong, key=signing_key
    )
    service_json = data["service_signer"]
    if service_json["kind"] == "rsa":
        if not isinstance(public.service_signature, ShoupRsaScheme):
            raise KeystoreError("party bundle is RSA but public bundle is not")
        signer: ShoupRsaShareholder | QuorumCertShareholder = ShoupRsaShareholder(
            party=int(service_json["party"]),
            public=public.service_signature,
            s=int(service_json["s"]),
        )
    elif service_json["kind"] == "certs":
        if not isinstance(public.service_signature, QuorumCertScheme):
            raise KeystoreError("party bundle is certs but public bundle is not")
        signer = QuorumCertShareholder(
            party=party, public=public.service_signature, key=signing_key
        )
    else:
        raise KeystoreError("unknown service signer kind")
    return PartyKeys(
        party=party,
        signing_key=signing_key,
        coin=coin,
        decryption=decryption,
        cert_quorum=cert_quorum,
        cert_honest=cert_honest,
        cert_strong=cert_strong,
        service_signer=signer,
        channel_keys=_channel_keys_from_json(data.get("channel_keys")),
    )


# -- client channel bundles --------------------------------------------------------


def client_to_dict(client: int, channel_keys: dict[int, bytes]) -> dict:
    """Serialize one client's channel-key bundle (secret: it IS the
    client's transport identity)."""
    return {
        "version": _VERSION,
        "client": client,
        "channel_keys": _channel_keys_to_json(channel_keys),
    }


def client_from_dict(data: dict) -> tuple[int, dict[int, bytes]]:
    """Rebuild ``(client id, peer -> key)`` from a client bundle."""
    if data.get("version") != _VERSION:
        raise KeystoreError(f"unsupported keystore version {data.get('version')!r}")
    return int(data["client"]), _channel_keys_from_json(data.get("channel_keys"))


# -- file helpers ------------------------------------------------------------------


def atomic_write_text(path: str | pathlib.Path, text: str) -> pathlib.Path:
    """Crash-safe file write: temp file + fsync + atomic rename.

    Key files are rewritten at every epoch change, and the chaos engine
    kills replicas at arbitrary instants — a plain ``write_text`` could
    leave a truncated ``server-i.json`` that bricks the replica on
    restart.  Writing to a sibling temp file, fsyncing it, and
    ``os.replace``-ing over the target means any observer (including a
    post-kill restart) sees either the complete old file or the
    complete new one, never a prefix.
    """
    path = pathlib.Path(path)
    # Per-process temp name: cluster-mates legitimately write the same
    # public.json/epoch.json concurrently and must not clobber each
    # other's half-written temp file.
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
    except BaseException:
        # The target is untouched; only the temp file may be partial.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    os.replace(tmp, path)
    return path


def write_deployment(keys: SystemKeys, directory: str | pathlib.Path) -> list[pathlib.Path]:
    """Write ``public.json`` plus one ``server-<i>.json`` per server."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    public_path = directory / "public.json"
    atomic_write_text(public_path, json.dumps(public_to_dict(keys.public), indent=1))
    written.append(public_path)
    for party, bundle in sorted(keys.private.items()):
        path = directory / f"server-{party}.json"
        atomic_write_text(path, json.dumps(party_to_dict(bundle), indent=1))
        written.append(path)
    for client, channel_keys in sorted(keys.client_channels.items()):
        path = directory / f"client-{client}.json"
        atomic_write_text(path, json.dumps(client_to_dict(client, channel_keys), indent=1))
        written.append(path)
    return written


def load_public(path: str | pathlib.Path) -> PublicKeys:
    """Load the public bundle from ``public.json``."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise KeystoreError(f"cannot read public bundle: {exc}") from exc
    return public_from_dict(data)


def load_party(path: str | pathlib.Path, public: PublicKeys) -> PartyKeys:
    """Load one server's secret bundle from ``server-<i>.json``."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise KeystoreError(f"cannot read party bundle: {exc}") from exc
    return party_from_dict(data, public)


def load_client(path: str | pathlib.Path) -> tuple[int, dict[int, bytes]]:
    """Load a client's channel-key bundle from ``client-<id>.json``."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise KeystoreError(f"cannot read client bundle: {exc}") from exc
    return client_from_dict(data)
