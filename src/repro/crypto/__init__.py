"""Threshold cryptography substrate (Section 2.1 of the paper).

Built from scratch on Python integers: Schnorr groups, Shamir and
generalized linear secret sharing, the Cachin-Kursawe-Shoup threshold
coin, the Shoup-Gennaro TDH2 threshold cryptosystem, Shoup RSA
threshold signatures, Chaum-Pedersen proofs, and the trusted dealer
that distributes it all.
"""

from .coin import CoinPublic, CoinShare, CoinShareholder, deal_coin
from .dealer import PartyKeys, PublicKeys, SystemKeys, deal_system
from .groups import SchnorrGroup, default_group, generate_group, small_group
from .lsss import LsssScheme, LsssSharing, threshold_scheme
from .schnorr import Signature, SigningKey, VerifyKey, keygen
from .shamir import Share, lagrange_coefficients, reconstruct, share_secret
from .threshold_enc import (
    Ciphertext,
    DecryptionShare,
    DecryptionShareholder,
    EncryptionPublic,
    deal_encryption,
)
from .threshold_sig import (
    QuorumCertScheme,
    QuorumCertificate,
    RsaSignature,
    RsaSignatureShare,
    ShoupRsaScheme,
    deal_quorum_certs,
    deal_shoup_rsa,
)

__all__ = [
    "CoinPublic",
    "CoinShare",
    "CoinShareholder",
    "deal_coin",
    "PartyKeys",
    "PublicKeys",
    "SystemKeys",
    "deal_system",
    "SchnorrGroup",
    "default_group",
    "generate_group",
    "small_group",
    "LsssScheme",
    "LsssSharing",
    "threshold_scheme",
    "Signature",
    "SigningKey",
    "VerifyKey",
    "keygen",
    "Share",
    "lagrange_coefficients",
    "reconstruct",
    "share_secret",
    "Ciphertext",
    "DecryptionShare",
    "DecryptionShareholder",
    "EncryptionPublic",
    "deal_encryption",
    "QuorumCertScheme",
    "QuorumCertificate",
    "RsaSignature",
    "RsaSignatureShare",
    "ShoupRsaScheme",
    "deal_quorum_certs",
    "deal_shoup_rsa",
]
