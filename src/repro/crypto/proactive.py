"""Proactive share refresh (Section 6, "Proactive Protocols").

The paper lists proactive security as the main extension: divide time
into epochs and let the parties *reshare* their key shares between
epochs so that everything a mobile adversary learned in past epochs
becomes useless.  Fully asynchronous proactive protocols were an open
problem in 2001 (and the paper says so); what is implemented here is
the classical synchronized-epoch refresh of Herzberg et al. that the
cited survey [9] describes, applied to the discrete-log shares used by
the coin and the threshold cryptosystem:

* every party deals a Feldman-verifiable sharing of *zero*;
* each party's new share is its old share plus the sum of the received
  zero-subshares;
* the public verification values are updated consistently, so share
  validity proofs keep working across epochs.

The refresh preserves the shared secret (all update polynomials have
zero constant term) while re-randomizing every share.  It applies to
the plain threshold (Shamir) sharing; the companion function
:func:`refresh_lsss` handles the generalized Benaloh-Leichter sharing
slot-wise by resharing along the same formula.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .groups import SchnorrGroup
from .lsss import LsssScheme, LsssSharing, SlotId
from .shamir import Share, evaluate_polynomial

__all__ = ["ZeroSharing", "deal_zero_sharing", "verify_zero_sharing",
           "apply_refresh", "refresh_lsss"]


@dataclass(frozen=True)
class ZeroSharing:
    """A Feldman-verifiable sharing of zero from one dealer-party.

    Attributes:
        dealer: issuing party.
        subshares: point ``i`` -> update value for party ``i``.
        commitments: ``g^{a_j}`` for every polynomial coefficient; the
            constant-term commitment must equal 1 (``g^0``).
    """

    dealer: int
    subshares: dict[int, int]
    commitments: list[int]


def deal_zero_sharing(
    group: SchnorrGroup,
    n: int,
    t: int,
    dealer: int,
    rng: random.Random,
) -> ZeroSharing:
    """Share the value zero with a degree-``t`` polynomial over Z_q."""
    coeffs = [0] + [rng.randrange(group.q) for _ in range(t)]
    subshares = {
        i: evaluate_polynomial(coeffs, i, group.q) for i in range(1, n + 1)
    }
    commitments = [group.power_of_g(c) for c in coeffs]
    return ZeroSharing(dealer=dealer, subshares=subshares, commitments=commitments)


def verify_zero_sharing(group: SchnorrGroup, sharing: ZeroSharing, point: int) -> bool:
    """Feldman check for the update subshare at ``point``.

    ``g^{subshare} == Π_j commitments[j]^{point^j}`` and the constant
    commitment equals 1, proving the hidden polynomial evaluates the
    dealt secret to zero.
    """
    if not sharing.commitments or sharing.commitments[0] != 1:
        return False
    value = sharing.subshares.get(point)
    if value is None:
        return False
    expected = 1
    power = 1
    for commitment in sharing.commitments:
        expected = group.mul(expected, group.exp(commitment, power))
        power = (power * point) % group.q
    return group.power_of_g(value) == expected


def apply_refresh(
    group: SchnorrGroup,
    old_share: Share,
    updates: list[ZeroSharing],
) -> Share:
    """Compute the party's next-epoch share from verified updates."""
    total = old_share.value
    for upd in updates:
        if not verify_zero_sharing(group, upd, old_share.index):
            raise ValueError(f"invalid zero-sharing from party {upd.dealer}")
        total = (total + upd.subshares[old_share.index]) % group.q
    return Share(index=old_share.index, value=total)


def refresh_lsss(
    scheme: LsssScheme,
    sharing: LsssSharing,
    rng: random.Random,
) -> LsssSharing:
    """Re-randomize a generalized sharing without changing the secret.

    Deals a fresh sharing of zero along the same access formula and
    adds it slot-wise — the LSSS analogue of the polynomial refresh.
    In a deployment each party contributes such a zero-sharing; here
    the update itself is generated centrally (the asynchronous
    distributed version is exactly the open problem Section 6 cites).
    """
    zero = scheme.deal(0, rng)
    refreshed: dict[int, dict[SlotId, int]] = {}
    for party, subshares in sharing.shares.items():
        updates = zero.shares.get(party, {})
        refreshed[party] = {
            slot: (value + updates.get(slot, 0)) % scheme.modulus
            for slot, value in subshares.items()
        }
    return LsssSharing(shares=refreshed)
