"""Threshold signatures.

Two interchangeable realizations sit behind one interface (see the
substitution table in DESIGN.md):

* :class:`ShoupRsaScheme` — the practical threshold signature scheme of
  Shoup [35] that the paper cites: non-interactive, robust (every
  signature share carries a proof of correctness), combinable into a
  single constant-size RSA signature.  It inherently realizes a
  ``k``-out-of-``n`` threshold and is used for the classical threshold
  adversary model.

* :class:`QuorumCertScheme` — a certificate of individual Schnorr
  signatures from a qualified set of an arbitrary access structure.
  CKS [8] note their agreement protocol stays correct when threshold
  signatures are replaced by sets of ordinary signatures (messages just
  grow); this realization is what makes the Section 4 *generalized
  adversary structures* work end-to-end, where no threshold signature
  scheme exists.

Both schemes expose: ``sign_share``, ``verify_share``, ``combine``,
``verify`` — the exact operations the broadcast/agreement layer uses.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Protocol

from .hashing import hash_to_int
from .numtheory import egcd, modinv
from .rsa import RsaModulus, choose_public_exponent, generate_rsa_modulus
from .schnorr import Signature as SchnorrSignature
from .schnorr import SigningKey, VerifyKey

__all__ = [
    "ThresholdScheme",
    "ShoupRsaScheme",
    "ShoupRsaShareholder",
    "RsaSignatureShare",
    "RsaSignature",
    "QuorumCertScheme",
    "QuorumCertShareholder",
    "QuorumCertificate",
    "deal_shoup_rsa",
    "deal_quorum_certs",
]


class ThresholdScheme(Protocol):
    """What the protocol layer relies on from any threshold signature."""

    def verify_share(self, message: object, share: object) -> bool: ...

    def combine(self, message: object, shares: dict[int, object]) -> object: ...

    def verify(self, message: object, signature: object) -> bool: ...


# ===========================================================================
# Shoup's RSA threshold signatures
# ===========================================================================


@dataclass(frozen=True)
class RsaSignatureShare:
    """``x_i = H(M)^{2Δ s_i}`` with a Fiat-Shamir proof of correctness."""

    party: int
    value: int
    challenge: int
    response: int


@dataclass(frozen=True)
class RsaSignature:
    """An ordinary RSA signature ``y`` with ``y^e = H(M) mod N``."""

    value: int


@dataclass(frozen=True)
class ShoupRsaScheme:
    """Public side of Shoup's scheme: verify shares, combine, verify.

    Attributes:
        n_parties: number of shareholders.
        k: shares needed to combine (``t + 1`` in the paper's usage).
        n_modulus: the RSA modulus ``N``.
        e: public verification exponent (prime ``> n_parties``).
        v: verification base, a generator of the squares mod ``N``.
        v_keys: ``v_i = v^{s_i}`` per party.
    """

    n_parties: int
    k: int
    n_modulus: int
    e: int
    v: int
    v_keys: dict[int, int]

    @property
    def delta(self) -> int:
        """Δ = n! — clears all Lagrange denominators over the integers."""
        return math.factorial(self.n_parties)

    def message_digest(self, message: object) -> int:
        """Hash the message into Z_N (the full-domain hash H of [35])."""
        x = hash_to_int("shoup-fdh", message, bits=self.n_modulus.bit_length() + 64)
        x %= self.n_modulus
        return x if x > 1 else x + 2

    def verify_share(self, message: object, share: RsaSignatureShare) -> bool:
        if share.party not in self.v_keys:
            return False
        N = self.n_modulus
        if not 0 < share.value < N:
            return False
        x = self.message_digest(message)
        x_tilde = pow(x, 4 * self.delta, N)
        xi_sq = pow(share.value, 2, N)
        vi = self.v_keys[share.party]
        # Recompute the commitments from (challenge, response):
        #   v' = v^z · v_i^{-c},  x' = x̃^z · x_i^{-2c}
        c, z = share.challenge, share.response
        v_prime = (pow(self.v, z, N) * modinv(pow(vi, c, N), N)) % N
        x_prime = (pow(x_tilde, z, N) * modinv(pow(share.value, 2 * c, N), N)) % N
        expected = hash_to_int(
            "shoup-share-proof",
            self.v, x_tilde, vi, xi_sq, v_prime, x_prime,
            bits=128,
        )
        return expected == c

    def _integer_lagrange(self, indices: list[int], i: int) -> int:
        """``λ^S_{0,i} = Δ · Π_{j≠i} j / (j - i)`` — an integer by design."""
        num = self.delta
        den = 1
        for j in indices:
            if j == i:
                continue
            num *= j
            den *= j - i
        assert num % den == 0
        return num // den

    def combine(self, message: object, shares: dict[int, RsaSignatureShare]) -> RsaSignature:
        """Combine ``k`` valid shares into a standard RSA signature."""
        if len(shares) < self.k:
            raise ValueError(f"need {self.k} shares, got {len(shares)}")
        chosen = dict(sorted(shares.items())[: self.k])
        N = self.n_modulus
        x = self.message_digest(message)
        indices = sorted(chosen)
        w = 1
        for i in indices:
            lam = self._integer_lagrange(indices, i)
            exponent = 2 * lam
            if exponent >= 0:
                w = (w * pow(chosen[i].value, exponent, N)) % N
            else:
                w = (w * modinv(pow(chosen[i].value, -exponent, N), N)) % N
        # w^e = x^{4Δ²}; since gcd(e, 4Δ²) = 1 extract y with y^e = x.
        g, a, b = egcd(self.e, 4 * self.delta * self.delta)
        if g != 1:
            raise ArithmeticError("e not coprime to 4Δ² — invalid parameters")
        y = (pow(x, a, N) if a >= 0 else modinv(pow(x, -a, N), N)) * (
            pow(w, b, N) if b >= 0 else modinv(pow(w, -b, N), N)
        ) % N
        signature = RsaSignature(value=y)
        if not self.verify(message, signature):
            raise ValueError("combined signature failed verification (bad shares?)")
        return signature

    def verify(self, message: object, signature: RsaSignature) -> bool:
        if not 0 < signature.value < self.n_modulus:
            return False
        return pow(signature.value, self.e, self.n_modulus) == self.message_digest(message)


@dataclass(frozen=True)
class ShoupRsaShareholder:
    """A party's secret signing share ``s_i`` of the RSA exponent."""

    party: int
    public: ShoupRsaScheme
    s: int

    def sign_share(self, message: object, rng: random.Random) -> RsaSignatureShare:
        pub = self.public
        N = pub.n_modulus
        x = pub.message_digest(message)
        x_tilde = pow(x, 4 * pub.delta, N)
        value = pow(x, 2 * pub.delta * self.s, N)
        # Fiat-Shamir proof of dlog equality over the hidden-order group:
        # the nonce range follows Shoup's L(N) + 2·L1 bound.
        bound = 1 << (N.bit_length() + 2 * 128)
        r = rng.randrange(bound)
        v_prime = pow(pub.v, r, N)
        x_prime = pow(x_tilde, r, N)
        vi = pub.v_keys[self.party]
        xi_sq = pow(value, 2, N)
        c = hash_to_int(
            "shoup-share-proof", pub.v, x_tilde, vi, xi_sq, v_prime, x_prime, bits=128
        )
        z = self.s * c + r
        return RsaSignatureShare(party=self.party, value=value, challenge=c, response=z)


def deal_shoup_rsa(
    n: int,
    k: int,
    rng: random.Random,
    bits: int = 512,
    modulus: RsaModulus | None = None,
) -> tuple[ShoupRsaScheme, dict[int, ShoupRsaShareholder]]:
    """Dealer setup: generate keys and Shamir-share ``d`` over ``Z_m``.

    Parties are indexed ``1..n`` internally (Shamir points must be
    nonzero); the caller's 0-based party ``i`` holds point ``i + 1``.
    """
    if not 1 <= k <= n:
        raise ValueError(f"invalid k={k} for n={n}")
    mod = modulus or generate_rsa_modulus(bits, rng)
    N, m = mod.n_modulus, mod.m
    e = choose_public_exponent(mod, n)
    d = modinv(e, m)
    # Shamir over Z_m with threshold k-1 (k shares reconstruct).
    coeffs = [d] + [rng.randrange(m) for _ in range(k - 1)]
    s_values = {}
    for i in range(1, n + 1):
        acc = 0
        for c in reversed(coeffs):
            acc = (acc * i + c) % m
        s_values[i] = acc
    # Verification base: a random square generates QR_N w.h.p.
    v = pow(rng.randrange(2, N - 1), 2, N)
    v_keys = {i: pow(v, s_values[i], N) for i in s_values}
    public = ShoupRsaScheme(n_parties=n, k=k, n_modulus=N, e=e, v=v, v_keys=v_keys)
    holders = {
        i: ShoupRsaShareholder(party=i, public=public, s=s_values[i]) for i in s_values
    }
    return public, holders


# ===========================================================================
# Quorum certificates (threshold signatures for general adversary structures)
# ===========================================================================


@dataclass(frozen=True)
class QuorumCertificate:
    """A set of individual signatures from a qualified set of parties."""

    signatures: dict[int, SchnorrSignature]

    @property
    def signers(self) -> frozenset[int]:
        return frozenset(self.signatures)


@dataclass(frozen=True)
class QuorumCertScheme:
    """Signature certificates qualified by an arbitrary predicate.

    ``qualifier`` decides which signer sets are sufficient — e.g. the
    generalized ``n - t`` rule (``QuorumSystem.is_quorum``) for the
    justifications inside Byzantine agreement, or ``contains_honest``
    for ``t + 1``-style evidence.
    """

    verify_keys: dict[int, VerifyKey]
    qualifier: Callable[[frozenset[int]], bool]
    tag: str = "quorum-cert"

    def verify_share(self, message: object, share: tuple[int, SchnorrSignature]) -> bool:
        party, signature = share
        key = self.verify_keys.get(party)
        if key is None:
            return False
        return key.verify((self.tag, message), signature)

    def combine(
        self, message: object, shares: dict[int, SchnorrSignature]
    ) -> QuorumCertificate:
        signers = frozenset(shares)
        if not self.qualifier(signers):
            raise ValueError(f"signers {sorted(signers)} do not form a qualified set")
        for party, signature in shares.items():
            if not self.verify_share(message, (party, signature)):
                raise ValueError(f"invalid signature share from party {party}")
        return QuorumCertificate(signatures=dict(shares))

    def verify(self, message: object, certificate: QuorumCertificate) -> bool:
        if not self.qualifier(certificate.signers):
            return False
        return all(
            self.verify_share(message, (party, signature))
            for party, signature in certificate.signatures.items()
        )


@dataclass(frozen=True)
class QuorumCertShareholder:
    """A party's ordinary signing key used to contribute to certificates."""

    party: int
    public: QuorumCertScheme
    key: SigningKey

    def sign_share(self, message: object, rng: random.Random) -> SchnorrSignature:
        return self.key.sign((self.public.tag, message), rng)


def deal_quorum_certs(
    keys: dict[int, SigningKey],
    qualifier: Callable[[frozenset[int]], bool],
    tag: str = "quorum-cert",
) -> tuple[QuorumCertScheme, dict[int, QuorumCertShareholder]]:
    """Build a certificate scheme over existing per-party Schnorr keys."""
    public = QuorumCertScheme(
        verify_keys={party: key.verify_key for party, key in keys.items()},
        qualifier=qualifier,
        tag=tag,
    )
    holders = {
        party: QuorumCertShareholder(party=party, public=public, key=key)
        for party, key in keys.items()
    }
    return public, holders
