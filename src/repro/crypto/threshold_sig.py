"""Threshold signatures.

Two interchangeable realizations sit behind one interface (see the
substitution table in DESIGN.md):

* :class:`ShoupRsaScheme` — the practical threshold signature scheme of
  Shoup [35] that the paper cites: non-interactive, robust (every
  signature share carries a proof of correctness), combinable into a
  single constant-size RSA signature.  It inherently realizes a
  ``k``-out-of-``n`` threshold and is used for the classical threshold
  adversary model.

* :class:`QuorumCertScheme` — a certificate of individual Schnorr
  signatures from a qualified set of an arbitrary access structure.
  CKS [8] note their agreement protocol stays correct when threshold
  signatures are replaced by sets of ordinary signatures (messages just
  grow); this realization is what makes the Section 4 *generalized
  adversary structures* work end-to-end, where no threshold signature
  scheme exists.

Both schemes expose: ``sign_share``, ``verify_share``, ``combine``,
``verify`` — the exact operations the broadcast/agreement layer uses —
plus ``verify_shares`` batching a whole quorum's share proofs into one
simultaneous multi-exponentiation (docs/PERFORMANCE.md).

Shoup share proofs are carried in commitment form ``(v', x', z)`` with
the challenge recomputed by hashing, which is what makes them
batchable.  All correctness equations are compared *squared*: the RSA
group has hidden order and no efficient membership test for the
squares, so verification works in the quotient ``Z_N^* / {±1}`` — sound
for this scheme because combination only ever uses even powers of the
share values (``x_i^{2λ}``), making a sign flip information-free.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Iterable, Mapping, Protocol

from .accel import batch_coefficients, verify_product_equations
from .hashing import hash_to_int
from .numtheory import egcd, modinv
from .rsa import RsaModulus, choose_public_exponent, generate_rsa_modulus
from .schnorr import Signature as SchnorrSignature
from .schnorr import SigningKey, VerifyKey, verify_batch

__all__ = [
    "ThresholdScheme",
    "ShoupRsaScheme",
    "ShoupRsaShareholder",
    "RsaSignatureShare",
    "RsaSignature",
    "QuorumCertScheme",
    "QuorumCertShareholder",
    "QuorumCertificate",
    "deal_shoup_rsa",
    "deal_quorum_certs",
]


class ThresholdScheme(Protocol):
    """What the protocol layer relies on from any threshold signature."""

    def verify_share(self, message: object, share: object) -> bool: ...

    def combine(self, message: object, shares: dict[int, object]) -> object: ...

    def verify(self, message: object, signature: object) -> bool: ...


# ===========================================================================
# Shoup's RSA threshold signatures
# ===========================================================================


@dataclass(frozen=True)
class RsaSignatureShare:
    """``x_i = H(M)^{2Δ s_i}`` with a Fiat-Shamir proof of correctness.

    The proof is the commitment pair ``(v' = v^r, x' = x̃^r)`` plus the
    response ``z = s_i·c + r``; the challenge ``c`` is recomputed by the
    verifier from the hashed transcript.
    """

    party: int
    value: int
    commit_v: int
    commit_x: int
    response: int


@dataclass(frozen=True)
class RsaSignature:
    """An ordinary RSA signature ``y`` with ``y^e = H(M) mod N``."""

    value: int


@dataclass(frozen=True)
class ShoupRsaScheme:
    """Public side of Shoup's scheme: verify shares, combine, verify.

    Attributes:
        n_parties: number of shareholders.
        k: shares needed to combine (``t + 1`` in the paper's usage).
        n_modulus: the RSA modulus ``N``.
        e: public verification exponent (prime ``> n_parties``).
        v: verification base, a generator of the squares mod ``N``.
        v_keys: ``v_i = v^{s_i}`` per party.
    """

    n_parties: int
    k: int
    n_modulus: int
    e: int
    v: int
    v_keys: dict[int, int]

    def __post_init__(self) -> None:
        object.__setattr__(self, "_lagrange_cache", {})

    @cached_property
    def delta(self) -> int:
        """Δ = n! — clears all Lagrange denominators over the integers."""
        return math.factorial(self.n_parties)

    # Adversarial responses larger than any honest one are rejected
    # outright (and keep batch exponents bounded): z = s·c + r with
    # s < N, c < 2^128, r < 2^(|N| + 256).
    @cached_property
    def _max_response_bits(self) -> int:
        return self.n_modulus.bit_length() + 2 * 128 + 2

    def message_digest(self, message: object) -> int:
        """Hash the message into Z_N (the full-domain hash H of [35])."""
        x = hash_to_int("shoup-fdh", message, bits=self.n_modulus.bit_length() + 64)
        x %= self.n_modulus
        return x if x > 1 else x + 2

    def _share_challenge(
        self, x_tilde: int, vi: int, xi_sq: int, v_prime: int, x_prime: int
    ) -> int:
        return hash_to_int(
            "shoup-share-proof",
            self.v, x_tilde, vi, xi_sq, v_prime, x_prime,
            bits=128,
        )

    def _share_well_formed(self, share: RsaSignatureShare) -> bool:
        if share.party not in self.v_keys:
            return False
        N = self.n_modulus
        return (
            0 < share.value < N
            and 0 < share.commit_v < N
            and 0 < share.commit_x < N
            and 0 <= share.response
            and share.response.bit_length() <= self._max_response_bits
        )

    def verify_share(self, message: object, share: RsaSignatureShare) -> bool:
        if not self._share_well_formed(share):
            return False
        N = self.n_modulus
        x = self.message_digest(message)
        x_tilde = pow(x, 4 * self.delta, N)
        xi_sq = pow(share.value, 2, N)
        vi = self.v_keys[share.party]
        c = self._share_challenge(x_tilde, vi, xi_sq, share.commit_v, share.commit_x)
        z = share.response
        # v^z = v'·v_i^c and x̃^z = x'·x_i^{2c}, compared squared (the
        # quotient by {±1}; see the module docstring).
        lhs_v = pow(self.v, z, N)
        rhs_v = share.commit_v * pow(vi, c, N) % N
        if pow(lhs_v, 2, N) != pow(rhs_v, 2, N):
            return False
        lhs_x = pow(x_tilde, z, N)
        rhs_x = share.commit_x * pow(xi_sq, c, N) % N
        return pow(lhs_x, 2, N) == pow(rhs_x, 2, N)

    def verify_shares(
        self, message: object, shares: Iterable[RsaSignatureShare]
    ) -> dict[int, RsaSignatureShare]:
        """Batch-verify signature shares; returns the valid ones by party.

        All share proofs collapse into one product equation over ``Z_N``
        via a small-exponent random linear combination (the exponents
        cannot be reduced — the group order is hidden — but the common
        bases ``v`` and ``x̃`` are merged, so the batch costs two big
        exponentiations plus short ones per share instead of four big
        ones per share).  On batch failure every share is re-checked
        individually to pinpoint culprits; the verdict equals per-share
        :meth:`verify_share` up to soundness error 2^-64.
        """
        N = self.n_modulus
        x = self.message_digest(message)
        x_tilde = pow(x, 4 * self.delta, N)
        candidates: dict[int, RsaSignatureShare] = {}
        equations = []
        transcript: list[object] = [N, self.v, x_tilde]
        for share in shares:
            if share.party in candidates or not self._share_well_formed(share):
                continue
            candidates[share.party] = share
            vi = self.v_keys[share.party]
            xi_sq = pow(share.value, 2, N)
            c = self._share_challenge(
                x_tilde, vi, xi_sq, share.commit_v, share.commit_x
            )
            z = share.response
            equations.append((((self.v, z),), ((share.commit_v, 1), (vi, c))))
            equations.append((((x_tilde, z),), ((share.commit_x, 1), (xi_sq, c))))
            transcript.extend((share.party, share.value, share.commit_v,
                               share.commit_x, z, c))
        coefficients = batch_coefficients("shoup-batch", transcript, len(equations))
        if verify_product_equations(N, equations, coefficients, square=True):
            return candidates
        return {
            party: share
            for party, share in candidates.items()
            if self.verify_share(message, share)
        }

    def _integer_lagrange(self, indices: list[int], i: int) -> int:
        """``λ^S_{0,i} = Δ · Π_{j≠i} j / (j - i)`` — an integer by design.

        Memoized: the same quorum recombines on every certificate.
        """
        cache: dict = self.__dict__["_lagrange_cache"]
        key = (tuple(indices), i)
        cached = cache.get(key)
        if cached is not None:
            return cached
        num = self.delta
        den = 1
        for j in indices:
            if j == i:
                continue
            num *= j
            den *= j - i
        assert num % den == 0
        if len(cache) >= 4096:
            cache.clear()
        cache[key] = num // den
        return cache[key]

    def combine(self, message: object, shares: dict[int, RsaSignatureShare]) -> RsaSignature:
        """Combine ``k`` valid shares into a standard RSA signature."""
        if len(shares) < self.k:
            raise ValueError(f"need {self.k} shares, got {len(shares)}")
        chosen = dict(sorted(shares.items())[: self.k])
        N = self.n_modulus
        x = self.message_digest(message)
        indices = sorted(chosen)
        w = 1
        for i in indices:
            lam = self._integer_lagrange(indices, i)
            exponent = 2 * lam
            if exponent >= 0:
                w = (w * pow(chosen[i].value, exponent, N)) % N
            else:
                w = (w * modinv(pow(chosen[i].value, -exponent, N), N)) % N
        # w^e = x^{4Δ²}; since gcd(e, 4Δ²) = 1 extract y with y^e = x.
        g, a, b = egcd(self.e, 4 * self.delta * self.delta)
        if g != 1:
            raise ArithmeticError("e not coprime to 4Δ² — invalid parameters")
        y = (pow(x, a, N) if a >= 0 else modinv(pow(x, -a, N), N)) * (
            pow(w, b, N) if b >= 0 else modinv(pow(w, -b, N), N)
        ) % N
        signature = RsaSignature(value=y)
        if not self.verify(message, signature):
            raise ValueError("combined signature failed verification (bad shares?)")
        return signature

    def verify(self, message: object, signature: RsaSignature) -> bool:
        if not 0 < signature.value < self.n_modulus:
            return False
        return pow(signature.value, self.e, self.n_modulus) == self.message_digest(message)


@dataclass(frozen=True)
class ShoupRsaShareholder:
    """A party's secret signing share ``s_i`` of the RSA exponent."""

    party: int
    public: ShoupRsaScheme
    s: int

    def sign_share(self, message: object, rng: random.Random) -> RsaSignatureShare:
        pub = self.public
        N = pub.n_modulus
        x = pub.message_digest(message)
        x_tilde = pow(x, 4 * pub.delta, N)
        value = pow(x, 2 * pub.delta * self.s, N)
        # Fiat-Shamir proof of dlog equality over the hidden-order group:
        # the nonce range follows Shoup's L(N) + 2·L1 bound.
        bound = 1 << (N.bit_length() + 2 * 128)
        r = rng.randrange(bound)
        v_prime = pow(pub.v, r, N)
        x_prime = pow(x_tilde, r, N)
        vi = pub.v_keys[self.party]
        xi_sq = pow(value, 2, N)
        c = pub._share_challenge(x_tilde, vi, xi_sq, v_prime, x_prime)
        z = self.s * c + r
        return RsaSignatureShare(
            party=self.party,
            value=value,
            commit_v=v_prime,
            commit_x=x_prime,
            response=z,
        )


def deal_shoup_rsa(
    n: int,
    k: int,
    rng: random.Random,
    bits: int = 512,
    modulus: RsaModulus | None = None,
) -> tuple[ShoupRsaScheme, dict[int, ShoupRsaShareholder]]:
    """Dealer setup: generate keys and Shamir-share ``d`` over ``Z_m``.

    Parties are indexed ``1..n`` internally (Shamir points must be
    nonzero); the caller's 0-based party ``i`` holds point ``i + 1``.
    """
    if not 1 <= k <= n:
        raise ValueError(f"invalid k={k} for n={n}")
    mod = modulus or generate_rsa_modulus(bits, rng)
    N, m = mod.n_modulus, mod.m
    e = choose_public_exponent(mod, n)
    d = modinv(e, m)
    # Shamir over Z_m with threshold k-1 (k shares reconstruct).
    coeffs = [d] + [rng.randrange(m) for _ in range(k - 1)]
    s_values = {}
    for i in range(1, n + 1):
        acc = 0
        for c in reversed(coeffs):
            acc = (acc * i + c) % m
        s_values[i] = acc
    # Verification base: a random square generates QR_N w.h.p.
    v = pow(rng.randrange(2, N - 1), 2, N)
    v_keys = {i: pow(v, s_values[i], N) for i in s_values}
    public = ShoupRsaScheme(n_parties=n, k=k, n_modulus=N, e=e, v=v, v_keys=v_keys)
    holders = {
        i: ShoupRsaShareholder(party=i, public=public, s=s_values[i]) for i in s_values
    }
    return public, holders


# ===========================================================================
# Quorum certificates (threshold signatures for general adversary structures)
# ===========================================================================


@dataclass(frozen=True)
class QuorumCertificate:
    """A set of individual signatures from a qualified set of parties."""

    signatures: dict[int, SchnorrSignature]

    @property
    def signers(self) -> frozenset[int]:
        return frozenset(self.signatures)


@dataclass(frozen=True)
class QuorumCertScheme:
    """Signature certificates qualified by an arbitrary predicate.

    ``qualifier`` decides which signer sets are sufficient — e.g. the
    generalized ``n - t`` rule (``QuorumSystem.is_quorum``) for the
    justifications inside Byzantine agreement, or ``contains_honest``
    for ``t + 1``-style evidence.
    """

    verify_keys: dict[int, VerifyKey]
    qualifier: Callable[[frozenset[int]], bool]
    tag: str = "quorum-cert"

    def verify_share(self, message: object, share: tuple[int, SchnorrSignature]) -> bool:
        party, signature = share
        key = self.verify_keys.get(party)
        if key is None:
            return False
        return key.verify((self.tag, message), signature)

    def _batch_ok(
        self, message: object, signatures: Mapping[int, SchnorrSignature]
    ) -> bool:
        """One multi-exp over all signatures (soundness error 2^-64)."""
        items = []
        for party, signature in sorted(signatures.items()):
            key = self.verify_keys.get(party)
            if key is None:
                return False
            items.append((key, (self.tag, message), signature))
        if not items:
            return True
        return verify_batch(items[0][0].group, items)

    def verify_shares(
        self, message: object, shares: Mapping[int, SchnorrSignature]
    ) -> dict[int, SchnorrSignature]:
        """Batch-verify signature shares; returns the valid ones by party.

        Falls back to per-share verification when the batch fails so
        culprits are pinpointed exactly (docs/PERFORMANCE.md).
        """
        if self._batch_ok(message, shares):
            return dict(shares)
        return {
            party: signature
            for party, signature in shares.items()
            if self.verify_share(message, (party, signature))
        }

    def combine(
        self, message: object, shares: dict[int, SchnorrSignature]
    ) -> QuorumCertificate:
        signers = frozenset(shares)
        if not self.qualifier(signers):
            raise ValueError(f"signers {sorted(signers)} do not form a qualified set")
        if not self._batch_ok(message, shares):
            for party, signature in sorted(shares.items()):
                if not self.verify_share(message, (party, signature)):
                    raise ValueError(f"invalid signature share from party {party}")
            # The batch rejected but every share verifies individually: a
            # 2^-64 soundness fluke; per-share verdicts are authoritative.
        return QuorumCertificate(signatures=dict(shares))

    def verify(self, message: object, certificate: QuorumCertificate) -> bool:
        if not self.qualifier(certificate.signers):
            return False
        if self._batch_ok(message, certificate.signatures):
            return True
        return all(
            self.verify_share(message, (party, signature))
            for party, signature in certificate.signatures.items()
        )


@dataclass(frozen=True)
class QuorumCertShareholder:
    """A party's ordinary signing key used to contribute to certificates."""

    party: int
    public: QuorumCertScheme
    key: SigningKey

    def sign_share(self, message: object, rng: random.Random) -> SchnorrSignature:
        return self.key.sign((self.public.tag, message), rng)


def deal_quorum_certs(
    keys: dict[int, SigningKey],
    qualifier: Callable[[frozenset[int]], bool],
    tag: str = "quorum-cert",
) -> tuple[QuorumCertScheme, dict[int, QuorumCertShareholder]]:
    """Build a certificate scheme over existing per-party Schnorr keys."""
    public = QuorumCertScheme(
        verify_keys={party: key.verify_key for party, key in keys.items()},
        qualifier=qualifier,
        tag=tag,
    )
    holders = {
        party: QuorumCertShareholder(party=party, public=public, key=key)
        for party, key in keys.items()
    }
    return public, holders
