"""Threshold coin-tossing (Cachin-Kursawe-Shoup, Diffie-Hellman based).

The randomized Byzantine agreement protocol of [8] draws its
unpredictable random bits from a *threshold coin*: the dealer shares an
exponent ``x``; the value of the coin named ``C`` is a hash of
``H(C)^x``, where ``H`` hashes coin names into the group.  No
coalition in the adversary structure can predict the coin, yet any
qualified set of honest parties can always compute it — every share
``H(C)^{x_slot}`` comes with a Chaum-Pedersen DLEQ proof of validity
against the public verification value ``g^{x_slot}`` (robustness).

The scheme is written against the generalized LSSS of Section 4.2, so
the classical ``t+1``-threshold coin is the single-gate special case.

Verifying a quorum of shares is the dominant cost of every agreement
round; :meth:`CoinPublic.verify_shares` batches the whole quorum's DLEQ
proofs into one simultaneous multi-exponentiation and falls back to
per-share checks only to pinpoint culprits (docs/PERFORMANCE.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Mapping

from .groups import SchnorrGroup
from .hashing import hash_to_group, hash_to_int
from .lsss import LsssScheme, SlotId
from .zkp import DleqProof, prove_dleq, verify_dleq, verify_dleq_batch

__all__ = ["CoinPublic", "CoinShareholder", "CoinShare", "deal_coin"]


@dataclass(frozen=True)
class CoinShare:
    """One party's contribution to a named coin: per-slot group elements
    with DLEQ proofs tying them to the public verification values."""

    party: int
    name: object
    values: dict[SlotId, int]
    proofs: dict[SlotId, DleqProof]


@dataclass(frozen=True)
class CoinPublic:
    """Public coin parameters: enough to verify shares and combine them."""

    group: SchnorrGroup
    scheme: LsssScheme
    verification: dict[SlotId, int]  # slot -> g^{x_slot}

    def coin_base(self, name: object) -> int:
        """The group element ``H(C)`` for coin name ``C``."""
        return hash_to_group(self.group, "coin-name", name)

    def _share_items(
        self, base: int, share: CoinShare
    ) -> list[tuple[int, int, int, int, DleqProof, object]] | None:
        """The DLEQ batch items for one structurally well-formed share."""
        expected_slots = set(self.scheme.slots_of_party(share.party))
        if set(share.values) != expected_slots or set(share.proofs) != expected_slots:
            return None
        return [
            (
                self.group.g,
                self.verification[slot],
                base,
                share.values[slot],
                share.proofs[slot],
                ("coin", share.name, slot),
            )
            for slot in sorted(expected_slots)
        ]

    def verify_share(self, share: CoinShare) -> bool:
        """Check that every slot value is correct w.r.t. its proof."""
        base = self.coin_base(share.name)
        items = self._share_items(base, share)
        if items is None:
            return False
        return all(
            verify_dleq(self.group, g, h1, u, h2, proof, context=ctx)
            for g, h1, u, h2, proof, ctx in items
        )

    def verify_shares(
        self, name: object, shares: Iterable[CoinShare]
    ) -> dict[int, CoinShare]:
        """Batch-verify shares of the named coin; returns the valid ones.

        All proofs of the whole set are checked with a single
        multi-exponentiation.  If the batch fails (at least one forged
        share, probability of a false pass 2^-64), each share is
        re-verified individually so culprits are pinpointed exactly —
        the returned mapping ``party -> share`` contains precisely the
        shares that per-share verification accepts.  Shares naming a
        different coin or duplicating a party are rejected outright.
        """
        base = self.coin_base(name)
        candidates: dict[int, tuple[CoinShare, list]] = {}
        for share in shares:
            if share.name != name or share.party in candidates:
                continue
            items = self._share_items(base, share)
            if items is None:
                continue
            candidates[share.party] = (share, items)
        batch = [item for _, items in candidates.values() for item in items]
        if verify_dleq_batch(self.group, batch):
            return {party: share for party, (share, _) in candidates.items()}
        return {
            party: share
            for party, (share, items) in candidates.items()
            if all(
                verify_dleq(self.group, g, h1, u, h2, proof, context=ctx)
                for g, h1, u, h2, proof, ctx in items
            )
        }

    def _combined_element(self, shares: Mapping[int, CoinShare]) -> int | None:
        """``H(C)^x`` recombined from a qualified set, or None if unqualified."""
        lam = self.scheme.recombination(set(shares))
        if lam is None:
            return None
        return self.group.multiexp(
            (shares[self.scheme.slot_owner(slot)].values[slot], coeff)
            for slot, coeff in lam.items()
        )

    def combine(self, name: object, shares: dict[int, CoinShare]) -> int:
        """Combine verified shares from a qualified set into the coin value.

        Returns an unpredictable bit.  Raises if the share-holders do
        not form a qualified set of the access structure.
        """
        value = self._combined_element(shares)
        if value is None:
            raise ValueError(
                f"parties {sorted(shares)} are not qualified to open the coin"
            )
        return hash_to_int("coin-value", name, value, bits=64) & 1

    def combine_many_bits(self, name: object, shares: dict[int, CoinShare], bits: int) -> int:
        """Like :meth:`combine` but extracts up to 64 unpredictable bits."""
        value = self._combined_element(shares)
        if value is None:
            raise ValueError("not a qualified set")
        return hash_to_int("coin-value", name, value, bits=64) & ((1 << bits) - 1)


@dataclass(frozen=True)
class CoinShareholder:
    """A party's secret coin key: its LSSS subshares of ``x``."""

    party: int
    public: CoinPublic
    subshares: dict[SlotId, int]

    def share_for(self, name: object, rng: random.Random) -> CoinShare:
        """Produce this party's share of the named coin, with proofs."""
        grp = self.public.group
        base = self.public.coin_base(name)
        values: dict[SlotId, int] = {}
        proofs: dict[SlotId, DleqProof] = {}
        for slot, x_slot in self.subshares.items():
            values[slot] = grp.exp(base, x_slot)
            proofs[slot] = prove_dleq(
                grp, grp.g, base, x_slot, rng, context=("coin", name, slot)
            )
        return CoinShare(party=self.party, name=name, values=values, proofs=proofs)


def deal_coin(
    group: SchnorrGroup,
    scheme: LsssScheme,
    rng: random.Random,
) -> tuple[CoinPublic, dict[int, CoinShareholder]]:
    """Trusted-dealer setup of the coin for a given access structure."""
    if scheme.modulus != group.q:
        raise ValueError("LSSS must be over Z_q of the group")
    secret = group.random_exponent(rng)
    sharing = scheme.deal(secret, rng)
    verification = {
        slot: group.power_of_g(value) for slot, value in sharing.all_slots().items()
    }
    public = CoinPublic(group=group, scheme=scheme, verification=verification)
    holders = {
        party: CoinShareholder(party=party, public=public, subshares=dict(subshares))
        for party, subshares in sharing.shares.items()
    }
    return public, holders
