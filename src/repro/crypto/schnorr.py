"""Schnorr digital signatures.

Used for (a) authenticating the point-to-point channels between servers
(Section 2 assumes authenticated links, bootstrapped from the dealer),
(b) the signed proposals inside the atomic broadcast protocol, and
(c) quorum certificates that stand in for threshold signatures under
generalized adversary structures (see DESIGN.md, substitution table).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .groups import SchnorrGroup, default_group
from .hashing import hash_to_exponent

__all__ = ["SigningKey", "VerifyKey", "Signature", "keygen"]


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature ``(c, z)`` on a message under some public key."""

    challenge: int
    response: int


@dataclass(frozen=True)
class VerifyKey:
    """Public verification key ``h = g^x``."""

    group: SchnorrGroup
    h: int

    def verify(self, message: object, signature: Signature) -> bool:
        """Check the signature; rejects malformed values outright."""
        grp = self.group
        if not grp.is_member(self.h):
            return False
        if not (0 < signature.challenge < grp.q and 0 <= signature.response < grp.q):
            return False
        a = grp.mul(
            grp.power_of_g(signature.response),
            grp.inv(grp.exp(self.h, signature.challenge)),
        )
        expected = hash_to_exponent(grp, "schnorr-sig", self.h, a, message)
        return expected == signature.challenge


@dataclass(frozen=True)
class SigningKey:
    """Secret signing key ``x``; carries its own verify key."""

    group: SchnorrGroup
    x: int

    @property
    def verify_key(self) -> VerifyKey:
        return VerifyKey(group=self.group, h=self.group.power_of_g(self.x))

    def sign(self, message: object, rng: random.Random) -> Signature:
        grp = self.group
        h = grp.power_of_g(self.x)
        w = grp.random_exponent(rng)
        a = grp.power_of_g(w)
        c = hash_to_exponent(grp, "schnorr-sig", h, a, message)
        z = (w + c * self.x) % grp.q
        return Signature(challenge=c, response=z)


def keygen(rng: random.Random, group: SchnorrGroup | None = None) -> SigningKey:
    """Generate a fresh Schnorr key pair."""
    grp = group or default_group()
    return SigningKey(group=grp, x=grp.random_exponent(rng))
