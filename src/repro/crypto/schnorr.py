"""Schnorr digital signatures.

Used for (a) authenticating the point-to-point channels between servers
(Section 2 assumes authenticated links, bootstrapped from the dealer),
(b) the signed proposals inside the atomic broadcast protocol, and
(c) quorum certificates that stand in for threshold signatures under
generalized adversary structures (see DESIGN.md, substitution table).

Signatures carry the commitment ``a = g^w`` instead of the challenge
(the challenge is recomputed by hashing), so a quorum of signatures can
be checked with one simultaneous multi-exponentiation
(:func:`verify_batch`) — see docs/PERFORMANCE.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

from .accel import accel_for, batch_coefficients, verify_product_equations
from .groups import SchnorrGroup, default_group
from .hashing import hash_to_exponent

__all__ = ["SigningKey", "VerifyKey", "Signature", "keygen", "verify_batch"]


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature ``(a, z)`` on a message under some public key.

    ``a = g^w`` is the commitment; the challenge ``c = H(h, a, m)`` is
    recomputed during verification and the equation ``g^z = a·h^c``
    checked directly.
    """

    commit: int
    response: int


def _sig_well_formed(grp: SchnorrGroup, signature: Signature) -> bool:
    if not isinstance(signature, Signature):
        return False
    a, z = signature.commit, signature.response
    if not (isinstance(a, int) and isinstance(z, int)):
        return False
    return 0 < a < grp.p and 0 <= z < grp.q


@dataclass(frozen=True)
class VerifyKey:
    """Public verification key ``h = g^x``."""

    group: SchnorrGroup
    h: int

    def verify(self, message: object, signature: Signature) -> bool:
        """Check the signature; rejects malformed values outright."""
        grp = self.group
        accel = accel_for(grp)
        if not accel.is_member(self.h):
            return False
        if not _sig_well_formed(grp, signature):
            return False
        a, z = signature.commit, signature.response
        c = hash_to_exponent(grp, "schnorr-sig", self.h, a, message)
        return accel.exp(grp.g, z) == a * accel.exp(self.h, c) % grp.p


def verify_batch(
    group: SchnorrGroup,
    items: Sequence[tuple[VerifyKey, object, Signature]],
) -> bool:
    """Batch-verify ``(key, message, signature)`` triples in one multi-exp.

    Small-exponent random linear combination with deterministic
    Fiat-Shamir coefficients; soundness error 2^-64 (docs/PERFORMANCE.md).
    Verdict matches per-item :meth:`VerifyKey.verify` up to that error;
    callers fall back to per-item checks to pinpoint culprits.
    """
    if not items:
        return True
    accel = accel_for(group)
    equations = []
    transcript: list[object] = [group.p, group.g]
    for key, message, signature in items:
        if key.group != group or not accel.is_member(key.h):
            return False
        if not _sig_well_formed(group, signature):
            return False
        a, z = signature.commit, signature.response
        if not accel.is_member(a):
            return False
        c = hash_to_exponent(group, "schnorr-sig", key.h, a, message)
        equations.append((((group.g, z),), ((a, 1), (key.h, c))))
        transcript.extend((key.h, a, z, c))
    coefficients = batch_coefficients("schnorr-batch", transcript, len(equations))
    return verify_product_equations(
        group.p, equations, coefficients, order=group.q
    )


@dataclass(frozen=True)
class SigningKey:
    """Secret signing key ``x``; carries its own verify key."""

    group: SchnorrGroup
    x: int

    @cached_property
    def verify_key(self) -> VerifyKey:
        return VerifyKey(group=self.group, h=self.group.power_of_g(self.x))

    def sign(self, message: object, rng: random.Random) -> Signature:
        grp = self.group
        h = self.verify_key.h
        w = grp.random_exponent(rng)
        a = grp.power_of_g(w)
        c = hash_to_exponent(grp, "schnorr-sig", h, a, message)
        z = (w + c * self.x) % grp.q
        return Signature(commit=a, response=z)


def keygen(rng: random.Random, group: SchnorrGroup | None = None) -> SigningKey:
    """Generate a fresh Schnorr key pair."""
    grp = group or default_group()
    return SigningKey(group=grp, x=grp.random_exponent(rng))
