"""Reproduction of *Distributing Trust on the Internet* (Cachin, DSN 2001).

An architecture for secure and fault-tolerant service replication in an
asynchronous network where a malicious adversary may corrupt servers
and controls the network.  The package provides, from scratch:

* :mod:`repro.crypto` — the threshold-cryptography substrate: Schnorr
  groups, Shamir and generalized linear secret sharing, the
  Cachin-Kursawe-Shoup threshold coin, the Shoup-Gennaro TDH2
  threshold cryptosystem, Shoup RSA threshold signatures, and the
  trusted dealer;
* :mod:`repro.adversary` — generalized Q^3 adversary structures,
  monotone threshold-gate formulas, attribute classification
  (the paper's Examples 1 and 2), and generalized quorum systems;
* :mod:`repro.net` — the asynchronous network simulator in which
  "the network is the adversary": adversarial schedulers, corruption
  harness, authenticated channels;
* :mod:`repro.core` — the broadcast/agreement stack: reliable and
  consistent broadcast, randomized binary Byzantine agreement,
  multi-valued agreement with external validity, atomic broadcast,
  and secure causal atomic broadcast;
* :mod:`repro.smr` — secure state machine replication with threshold-
  signed replies;
* :mod:`repro.apps` — the trusted services of Section 5: certification
  authority, secure directory, notary, authentication service, fair
  exchange;
* :mod:`repro.baselines` — executable counterparts of the Figure 1
  comparison rows (deterministic leader-based consensus; timeout
  failure detectors and view-based membership).
"""

__version__ = "1.0.0"

__all__ = ["adversary", "apps", "baselines", "core", "crypto", "net", "smr"]
