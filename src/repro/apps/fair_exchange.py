"""Trusted third party for fair exchange (Section 5 via [6]).

Two clients want to swap digital items so that either both obtain the
counterparty's item or neither does.  A trusted escrow makes this
trivial — and this architecture makes the escrow itself trustworthy:
its decisions are totally ordered, so "who deposited first" and
"was the exchange completed or aborted" have one answer at every
honest replica, and its receipts carry the service threshold signature.

Protocol (all operations through atomic broadcast):

1. ``offer``: party A escrows its item against an expected description
   of B's item;
2. ``accept``: B escrows its matching item; the exchange atomically
   becomes *completed* — from this point neither side can abort;
3. ``collect``: each side retrieves the counterparty's item;
4. ``abort``: A may cancel any time before ``accept``; this releases
   nothing and permanently invalidates the exchange id.
"""

from __future__ import annotations

from ..smr.client import ServiceClient
from ..smr.state_machine import Request, StateMachine

__all__ = ["FairExchangeService", "FairExchangeClient"]


class FairExchangeService(StateMachine):
    """Replicated escrow state per exchange id.

    Operations:
        ("offer", xid, item, expected_description, counterparty)
        ("accept", xid, item)
        ("collect", xid)
        ("abort", xid)
        ("status", xid)
    """

    def __init__(self) -> None:
        # xid -> dict with offerer/counterparty/items/state
        self.exchanges: dict[str, dict] = {}

    def apply(self, request: Request) -> object:
        op = request.operation
        if not op:
            return ("error", "empty operation")
        kind = op[0]
        if kind == "offer" and len(op) == 5 and isinstance(op[1], str):
            return self._offer(request.client, op[1], op[2], op[3], op[4])
        if kind == "accept" and len(op) == 3 and isinstance(op[1], str):
            return self._accept(request.client, op[1], op[2])
        if kind == "collect" and len(op) == 2 and isinstance(op[1], str):
            return self._collect(request.client, op[1])
        if kind == "abort" and len(op) == 2 and isinstance(op[1], str):
            return self._abort(request.client, op[1])
        if kind == "status" and len(op) == 2 and isinstance(op[1], str):
            ex = self.exchanges.get(op[1])
            return ("status", op[1], ex["state"] if ex else "unknown")
        return ("error", "unknown operation")

    def _offer(
        self, client: int, xid: str, item: object, expected: object, counterparty: object
    ) -> object:
        if not isinstance(counterparty, int):
            return ("error", "malformed counterparty")
        if xid in self.exchanges:
            return ("denied", "exchange id exists")
        self.exchanges[xid] = {
            "state": "offered",
            "offerer": client,
            "counterparty": counterparty,
            "offer_item": item,
            "expected": expected,
            "accept_item": None,
        }
        return ("offered", xid)

    def _accept(self, client: int, xid: str, item: object) -> object:
        ex = self.exchanges.get(xid)
        if ex is None or ex["state"] != "offered":
            return ("denied", "not open")
        if client != ex["counterparty"]:
            return ("denied", "not the counterparty")
        if item != ex["expected"]:
            return ("denied", "item does not match offer")
        ex["accept_item"] = item
        ex["state"] = "completed"
        return ("completed", xid)

    def _collect(self, client: int, xid: str) -> object:
        ex = self.exchanges.get(xid)
        if ex is None or ex["state"] != "completed":
            return ("denied", "not completed")
        if client == ex["offerer"]:
            return ("item", xid, ex["accept_item"])
        if client == ex["counterparty"]:
            return ("item", xid, ex["offer_item"])
        return ("denied", "not a participant")

    def _abort(self, client: int, xid: str) -> object:
        ex = self.exchanges.get(xid)
        if ex is None:
            return ("denied", "unknown exchange")
        if client != ex["offerer"]:
            return ("denied", "only the offerer may abort")
        if ex["state"] != "offered":
            return ("denied", "already completed")
        ex["state"] = "aborted"
        return ("aborted", xid)

    def snapshot(self) -> object:
        return tuple(
            sorted(
                (xid, ex["state"], ex["offerer"], ex["counterparty"])
                for xid, ex in self.exchanges.items()
            )
        )


class FairExchangeClient:
    """Typed wrapper over :class:`ServiceClient`."""

    def __init__(self, client: ServiceClient) -> None:
        self.client = client

    def offer(self, xid: str, item: object, expected: object, counterparty: int) -> int:
        """Escrow an item against a description of the counterpart's."""
        return self.client.submit(("offer", xid, item, expected, counterparty))

    def accept(self, xid: str, item: object) -> int:
        """Escrow the matching item; completes the exchange atomically."""
        return self.client.submit(("accept", xid, item))

    def collect(self, xid: str) -> int:
        """Retrieve the counterparty's item after completion."""
        return self.client.submit(("collect", xid))

    def abort(self, xid: str) -> int:
        """Cancel an un-accepted offer (offerer only)."""
        return self.client.submit(("abort", xid))

    def status(self, xid: str) -> int:
        """Query an exchange's state."""
        return self.client.submit(("status", xid))
