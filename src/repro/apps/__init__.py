"""Trusted services on top of the replication architecture (Section 5)."""

from .authentication import (
    AuthenticationClient,
    AuthenticationService,
    credential_digest,
)
from .ca import CaClient, Certificate, CertificationAuthority
from .directory import DirectoryClient, DirectoryService
from .fair_exchange import FairExchangeClient, FairExchangeService
from .notary import NotaryClient, NotaryService, document_digest
from .timestamping import (
    TimestampClient,
    TimestampingService,
    verify_chain_segment,
)

__all__ = [
    "AuthenticationClient",
    "AuthenticationService",
    "credential_digest",
    "CaClient",
    "Certificate",
    "CertificationAuthority",
    "DirectoryClient",
    "DirectoryService",
    "FairExchangeClient",
    "FairExchangeService",
    "NotaryClient",
    "NotaryService",
    "document_digest",
    "TimestampClient",
    "TimestampingService",
    "verify_chain_segment",
]
