"""Digital notary / time-stamping service (Section 5.2).

The notary receives documents, assigns each a sequence number (a
logical clock), and certifies this with its signature — usable for
domain-name assignment or patent registration.  It must process
requests *sequentially and atomically*, and — the paper's central point
— request contents must stay confidential until processed: otherwise a
corrupted server could observe a pending patent filing and front-run it
with a related filing of its own.  Clients therefore submit through
secure causal atomic broadcast (``submit_confidential``); experiment E7
mounts the front-running attack against both configurations.

First registration wins: re-registering a digest returns the original
sequence number marked ``first=False``.
"""

from __future__ import annotations

from ..crypto.hashing import hash_bytes
from ..smr.client import ServiceClient
from ..smr.state_machine import Request, StateMachine

__all__ = ["NotaryService", "NotaryClient", "document_digest"]


def document_digest(document: bytes) -> bytes:
    """The digest clients register (documents never leave the client)."""
    return hash_bytes("notary-document", document)


class NotaryService(StateMachine):
    """Replicated notary state: digest -> (sequence, registrant).

    Operations:
        ("register", digest)
        ("query", digest)
        ("history", start, count)   -- audit trail slice
    """

    def __init__(self) -> None:
        self.sequence = 0
        self.registry: dict[bytes, tuple[int, int]] = {}
        self.log: list[tuple[int, bytes, int]] = []

    def apply(self, request: Request) -> object:
        op = request.operation
        if not op:
            return ("error", "empty operation")
        kind = op[0]
        if kind == "register" and len(op) == 2 and isinstance(op[1], bytes):
            return self._register(request.client, op[1])
        if kind == "query" and len(op) == 2 and isinstance(op[1], bytes):
            return self._query(op[1])
        if (
            kind == "history"
            and len(op) == 3
            and isinstance(op[1], int)
            and isinstance(op[2], int)
        ):
            window = self.log[max(op[1], 0) : max(op[1], 0) + max(op[2], 0)]
            return ("history", tuple(window))
        return ("error", "unknown operation")

    def _register(self, client: int, digest: bytes) -> object:
        existing = self.registry.get(digest)
        if existing is not None:
            seq, registrant = existing
            return ("registered", seq, digest, registrant, False)
        self.sequence += 1
        self.registry[digest] = (self.sequence, client)
        self.log.append((self.sequence, digest, client))
        return ("registered", self.sequence, digest, client, True)

    def _query(self, digest: bytes) -> object:
        existing = self.registry.get(digest)
        if existing is None:
            return ("unregistered", digest)
        seq, registrant = existing
        return ("registered", seq, digest, registrant, False)

    def snapshot(self) -> object:
        return (self.sequence, tuple(sorted(self.registry.items())))


class NotaryClient:
    """Typed wrapper.

    A notary deployed with ``causal=True`` (the secure configuration)
    only accepts encrypted submissions, so the client mirrors the
    deployment mode for every operation.
    """

    def __init__(self, client: ServiceClient, confidential: bool = True) -> None:
        self.client = client
        self.confidential = confidential

    def _submit(self, operation: tuple) -> int:
        if self.confidential:
            return self.client.submit_confidential(operation)
        return self.client.submit(operation)

    def register(self, document: bytes) -> int:
        """Register a document digest; first registration wins."""
        return self._submit(("register", document_digest(document)))

    def query(self, document: bytes) -> int:
        """Check whether (and to whom) a document is registered."""
        return self._submit(("query", document_digest(document)))

    def history(self, start: int = 0, count: int = 100) -> int:
        """Fetch a window of the registration audit log."""
        return self._submit(("history", start, count))
