"""Secure directory service (Section 5.1).

A secure directory maintains a database of entries, processes lookup
queries, and returns answers *authenticated by the service signature*
(the distributed analogue of DNSSEC-style authenticated directories).
Updates change global state and therefore go through atomic broadcast,
like everything else; lookups could commute, but routing them through
the same total order gives every client linearizable reads — the
stronger guarantee at the cost the paper accepts for trusted services.

Names are owned by their first binder: only the binding client may
rebind or unbind (a minimal authorization model on top of the paper's
sketch, exercised by the fault-injection tests).
"""

from __future__ import annotations

from ..smr.client import ServiceClient
from ..smr.state_machine import Request, StateMachine

__all__ = ["DirectoryService", "DirectoryClient"]


class DirectoryService(StateMachine):
    """Replicated directory state: name -> (value, owner, version).

    Operations:
        ("bind", name, value)     -- create; fails if the name exists
        ("rebind", name, value)   -- update; owner only
        ("unbind", name)          -- delete; owner only
        ("resolve", name)
        ("list", prefix)
    """

    def __init__(self) -> None:
        self.entries: dict[str, tuple[object, int, int]] = {}
        self.version = 0

    def apply(self, request: Request) -> object:
        op = request.operation
        if not op:
            return ("error", "empty operation")
        kind = op[0]
        if kind == "bind" and len(op) == 3 and isinstance(op[1], str):
            return self._bind(request.client, op[1], op[2])
        if kind == "rebind" and len(op) == 3 and isinstance(op[1], str):
            return self._rebind(request.client, op[1], op[2])
        if kind == "unbind" and len(op) == 2 and isinstance(op[1], str):
            return self._unbind(request.client, op[1])
        if kind == "resolve" and len(op) == 2 and isinstance(op[1], str):
            return self._resolve(op[1])
        if kind == "list" and len(op) == 2 and isinstance(op[1], str):
            names = tuple(sorted(n for n in self.entries if n.startswith(op[1])))
            return ("names", names)
        return ("error", "unknown operation")

    def _bind(self, client: int, name: str, value: object) -> object:
        if name in self.entries:
            return ("denied", "name exists")
        self.version += 1
        self.entries[name] = (value, client, self.version)
        return ("bound", name, self.version)

    def _rebind(self, client: int, name: str, value: object) -> object:
        entry = self.entries.get(name)
        if entry is None:
            return ("denied", "no such name")
        if entry[1] != client:
            return ("denied", "not owner")
        self.version += 1
        self.entries[name] = (value, client, self.version)
        return ("bound", name, self.version)

    def _unbind(self, client: int, name: str) -> object:
        entry = self.entries.get(name)
        if entry is None:
            return ("denied", "no such name")
        if entry[1] != client:
            return ("denied", "not owner")
        del self.entries[name]
        self.version += 1
        return ("unbound", name, self.version)

    def _resolve(self, name: str) -> object:
        entry = self.entries.get(name)
        if entry is None:
            return ("unknown", name)
        value, owner, version = entry
        return ("entry", name, value, owner, version)

    def is_read_only(self, operation: tuple) -> bool:
        return bool(operation) and operation[0] in ("resolve", "list")

    def snapshot(self) -> object:
        return (self.version, tuple(sorted(self.entries.items())))


class DirectoryClient:
    """Typed wrapper over :class:`ServiceClient` for the directory."""

    def __init__(self, client: ServiceClient) -> None:
        self.client = client

    def bind(self, name: str, value: object) -> int:
        """Create a binding; the caller becomes the name's owner."""
        return self.client.submit(("bind", name, value))

    def rebind(self, name: str, value: object) -> int:
        """Update an owned binding."""
        return self.client.submit(("rebind", name, value))

    def unbind(self, name: str) -> int:
        """Delete an owned binding."""
        return self.client.submit(("unbind", name))

    def resolve(self, name: str) -> int:
        """Look up a name; the reply carries the service signature."""
        return self.client.submit(("resolve", name))

    def list(self, prefix: str = "") -> int:
        """Enumerate names under a prefix."""
        return self.client.submit(("list", prefix))
