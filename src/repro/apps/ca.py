"""Distributed certification authority (Section 5.1).

A CA verifies credentials and confirms public keys by issuing
certificates — digital signatures under the CA's signing key on the
(public key, identity) pair.  Distributed with this architecture:

* requests are delivered by atomic broadcast so all replicas see the
  same sequence (crucial: certificates depend on the serial counter and
  the *current policy*, which may change over time — Section 5.1 notes
  reliable broadcast would only suffice if the policy never changed);
* the CA's signature is the service's threshold signature: the client
  assembles its certificate from the replicas' signature shares, and
  verifies it against the single public key of the service.

The policy is part of the replicated state: a set of credential fields
that must be present and vouched for.  Policy updates are ordinary
(administrative) operations and therefore totally ordered with respect
to issuance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..smr.client import CompletedRequest, ServiceClient
from ..smr.state_machine import Request, StateMachine

__all__ = ["CertificationAuthority", "CaClient", "Certificate"]

_DEFAULT_POLICY = ("name", "email")


@dataclass(frozen=True)
class Certificate:
    """A parsed certificate: the service signature lives in the reply."""

    serial: int
    subject: str
    public_key: int
    policy_version: int


class CertificationAuthority(StateMachine):
    """Replicated CA state: issued certificates, serials, and the policy.

    Operations:
        ("issue", subject, public_key, credentials)
        ("lookup", subject)
        ("revoke", serial, reason)
        ("set_policy", field, ...)    -- administrative
        ("get_policy",)
    Credentials are ``(field, value)`` pairs; the policy lists required
    fields (a stand-in for the paper's "clearly stated and publicized
    policy" for validating IDs).
    """

    def __init__(self, policy: tuple = _DEFAULT_POLICY) -> None:
        self.policy: tuple = policy
        self.policy_version = 1
        self.serial = 0
        self.issued: dict[int, Certificate] = {}
        self.by_subject: dict[str, int] = {}
        self.revoked: dict[int, str] = {}

    # -- operations ------------------------------------------------------------

    def apply(self, request: Request) -> object:
        op = request.operation
        if not op:
            return ("error", "empty operation")
        kind = op[0]
        if kind == "issue":
            return self._issue(op)
        if kind == "lookup":
            return self._lookup(op)
        if kind == "revoke":
            return self._revoke(op)
        if kind == "set_policy":
            return self._set_policy(op)
        if kind == "get_policy":
            return ("policy", self.policy_version, self.policy)
        return ("error", "unknown operation")

    def _issue(self, op: tuple) -> object:
        if len(op) != 4 or not isinstance(op[1], str) or not isinstance(op[2], int):
            return ("error", "malformed issue request")
        subject, public_key, credentials = op[1], op[2], op[3]
        if not isinstance(credentials, tuple):
            return ("error", "malformed credentials")
        provided = {
            pair[0]
            for pair in credentials
            if isinstance(pair, tuple) and len(pair) == 2 and isinstance(pair[0], str)
        }
        missing = [f for f in self.policy if f not in provided]
        if missing:
            return ("denied", ("missing credentials", tuple(missing)))
        if subject in self.by_subject:
            serial = self.by_subject[subject]
            if serial not in self.revoked:
                return ("denied", ("subject already certified", serial))
        self.serial += 1
        cert = Certificate(
            serial=self.serial,
            subject=subject,
            public_key=public_key,
            policy_version=self.policy_version,
        )
        self.issued[self.serial] = cert
        self.by_subject[subject] = self.serial
        return ("certificate", cert.serial, cert.subject, cert.public_key,
                cert.policy_version)

    def _lookup(self, op: tuple) -> object:
        if len(op) != 2 or not isinstance(op[1], str):
            return ("error", "malformed lookup")
        serial = self.by_subject.get(op[1])
        if serial is None:
            return ("unknown", op[1])
        cert = self.issued[serial]
        status = "revoked" if serial in self.revoked else "valid"
        return ("certificate-status", status, cert.serial, cert.subject,
                cert.public_key, cert.policy_version)

    def _revoke(self, op: tuple) -> object:
        if len(op) != 3 or not isinstance(op[1], int) or not isinstance(op[2], str):
            return ("error", "malformed revoke")
        serial, reason = op[1], op[2]
        if serial not in self.issued:
            return ("error", "no such certificate")
        self.revoked.setdefault(serial, reason)
        return ("revoked", serial)

    def _set_policy(self, op: tuple) -> object:
        fields = op[1:]
        if not all(isinstance(f, str) for f in fields):
            return ("error", "malformed policy")
        self.policy = tuple(fields)
        self.policy_version += 1
        return ("policy", self.policy_version, self.policy)

    def snapshot(self) -> object:
        return (
            self.policy_version,
            self.policy,
            self.serial,
            tuple(sorted(self.by_subject.items())),
            tuple(sorted(self.revoked.items())),
        )


class CaClient:
    """Typed wrapper over :class:`ServiceClient` for the CA."""

    def __init__(self, client: ServiceClient) -> None:
        self.client = client

    def request_certificate(
        self, subject: str, public_key: int, credentials: dict[str, str]
    ) -> int:
        """Submit an issuance request; returns the nonce to await."""
        creds = tuple(sorted(credentials.items()))
        return self.client.submit(("issue", subject, public_key, creds))

    def lookup(self, subject: str) -> int:
        """Query a subject's certificate status."""
        return self.client.submit(("lookup", subject))

    def revoke(self, serial: int, reason: str) -> int:
        """Revoke a certificate by serial (administrative)."""
        return self.client.submit(("revoke", serial, reason))

    def set_policy(self, *fields: str) -> int:
        """Replace the credential policy (administrative, totally ordered)."""
        return self.client.submit(("set_policy", *fields))

    @staticmethod
    def parse_certificate(completed: CompletedRequest) -> Certificate | None:
        """Extract the certificate from a completed issuance reply."""
        result = completed.result
        if isinstance(result, tuple) and len(result) == 5 and result[0] == "certificate":
            return Certificate(
                serial=result[1],
                subject=result[2],
                public_key=result[3],
                policy_version=result[4],
            )
        return None
