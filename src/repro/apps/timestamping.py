"""Hash-linked time-stamping service (Section 5.2's second role).

The paper describes the notary as "a secure document registry with a
logical clock".  This service strengthens the plain notary with the
classical linking technique of time-stamping services: every issued
stamp commits to the hash of its predecessor, so the sequence of stamps
forms a tamper-evident chain.  Even a later compromise of the service's
signing keys cannot silently reorder or backdate stamps — any rewrite
breaks the chain at a verifiable position, and clients can audit any
stamp against any later *anchor* they trust.

Operations (all through atomic broadcast — the chain *is* the total
order made durable):

    ("stamp", digest)            -> ("stamped", seq, digest, link, chain_head)
    ("anchor",)                  -> ("anchor", seq, chain_head)
    ("proof", seq)               -> the stamp record at seq
    ("verify_chain", start, count) -> server-side chain audit

Client-side verification (:func:`verify_chain_segment`) recomputes the
links from the records alone, without trusting the service.
"""

from __future__ import annotations

from ..crypto.hashing import hash_bytes
from ..smr.client import ServiceClient
from ..smr.state_machine import Request, StateMachine

__all__ = ["TimestampingService", "TimestampClient", "verify_chain_segment",
           "GENESIS"]

GENESIS = hash_bytes("timestamp-genesis", "2001-03-08")


def _link(seq: int, digest: bytes, previous: bytes) -> bytes:
    """The chain rule: head_seq = H(seq, digest, head_{seq-1})."""
    return hash_bytes("timestamp-link", seq, digest, previous)


def verify_chain_segment(records: list[tuple], start_head: bytes) -> bool:
    """Audit a run of stamp records against a trusted starting head.

    ``records`` are ``(seq, digest, link)`` tuples as returned by the
    service; ``start_head`` is the chain head *before* the first record
    (``GENESIS`` for seq 1).  Purely client-side: recomputes each link.
    """
    head = start_head
    expected_seq = None
    for seq, digest, link in records:
        if expected_seq is not None and seq != expected_seq:
            return False
        if _link(seq, digest, head) != link:
            return False
        head = link
        expected_seq = seq + 1
    return True


class TimestampingService(StateMachine):
    """Replicated hash-chain state."""

    def __init__(self) -> None:
        self.sequence = 0
        self.head = GENESIS
        self.records: list[tuple[int, bytes, bytes]] = []  # (seq, digest, link)
        self.by_digest: dict[bytes, int] = {}

    def apply(self, request: Request) -> object:
        op = request.operation
        if not op:
            return ("error", "empty operation")
        kind = op[0]
        if kind == "stamp" and len(op) == 2 and isinstance(op[1], bytes):
            return self._stamp(op[1])
        if kind == "anchor" and len(op) == 1:
            return ("anchor", self.sequence, self.head)
        if kind == "proof" and len(op) == 2 and isinstance(op[1], int):
            return self._proof(op[1])
        if (
            kind == "verify_chain"
            and len(op) == 3
            and isinstance(op[1], int)
            and isinstance(op[2], int)
        ):
            return self._verify(op[1], op[2])
        return ("error", "unknown operation")

    def _stamp(self, digest: bytes) -> object:
        existing = self.by_digest.get(digest)
        if existing is not None:
            seq, d, link = self.records[existing - 1]
            return ("stamped", seq, d, link, self.head, False)
        self.sequence += 1
        link = _link(self.sequence, digest, self.head)
        self.head = link
        self.records.append((self.sequence, digest, link))
        self.by_digest[digest] = self.sequence
        return ("stamped", self.sequence, digest, link, self.head, True)

    def _proof(self, seq: int) -> object:
        if not 1 <= seq <= self.sequence:
            return ("error", "no such stamp")
        return ("proof", self.records[seq - 1])

    def _verify(self, start: int, count: int) -> object:
        if not 1 <= start <= self.sequence or count < 1:
            return ("error", "bad range")
        previous = GENESIS if start == 1 else self.records[start - 2][2]
        segment = self.records[start - 1 : start - 1 + count]
        ok = verify_chain_segment(segment, previous)
        return ("chain", ok, len(segment))

    def snapshot(self) -> object:
        return (self.sequence, self.head, tuple(self.records))


class TimestampClient:
    """Typed wrapper; supports client-side chain auditing."""

    def __init__(self, client: ServiceClient, confidential: bool = False) -> None:
        self.client = client
        self.confidential = confidential

    def _submit(self, operation: tuple) -> int:
        if self.confidential:
            return self.client.submit_confidential(operation)
        return self.client.submit(operation)

    def stamp(self, document: bytes) -> int:
        """Request a hash-chained timestamp on a document digest."""
        return self._submit(("stamp", hash_bytes("timestamp-doc", document)))

    def anchor(self) -> int:
        """Fetch the current chain head (a trust anchor for audits)."""
        return self._submit(("anchor",))

    def proof(self, seq: int) -> int:
        """Fetch the stamp record at a sequence number."""
        return self._submit(("proof", seq))

    def verify_chain(self, start: int, count: int) -> int:
        """Ask the service to audit a chain segment (see also the
        client-side :func:`verify_chain_segment`)."""
        return self._submit(("verify_chain", start, count))
