"""Distributed authentication service (Section 5 via [6]).

The MAFTIA deliverable the paper cites specifies an authentication
service as one of the dependable trusted third parties.  This replica
stores credential *digests* (never raw secrets) and answers
authentication queries with service-signed verdicts.  Verification is
rate-limited per principal by a deterministic failure counter — a
lockout policy that, being part of the replicated state, is enforced
identically by every honest replica and cannot be reset by any single
corrupted one.
"""

from __future__ import annotations

from ..crypto.hashing import hash_bytes
from ..smr.client import ServiceClient
from ..smr.state_machine import Request, StateMachine

__all__ = ["AuthenticationService", "AuthenticationClient", "credential_digest"]

_MAX_FAILURES = 5


def credential_digest(principal: str, secret: bytes) -> bytes:
    """Salted digest bound to the principal (no cross-user equality)."""
    return hash_bytes("auth-credential", principal, secret)


class AuthenticationService(StateMachine):
    """Replicated authentication state.

    Operations:
        ("enroll", principal, digest)
        ("authenticate", principal, digest)
        ("change", principal, old_digest, new_digest)
        ("status", principal)
    """

    def __init__(self, max_failures: int = _MAX_FAILURES) -> None:
        self.max_failures = max_failures
        self.credentials: dict[str, bytes] = {}
        self.failures: dict[str, int] = {}

    def apply(self, request: Request) -> object:
        op = request.operation
        if not op:
            return ("error", "empty operation")
        kind = op[0]
        if kind == "enroll" and len(op) == 3:
            return self._enroll(op[1], op[2])
        if kind == "authenticate" and len(op) == 3:
            return self._authenticate(op[1], op[2])
        if kind == "change" and len(op) == 4:
            return self._change(op[1], op[2], op[3])
        if kind == "status" and len(op) == 2 and isinstance(op[1], str):
            if op[1] not in self.credentials:
                return ("unknown", op[1])
            locked = self.failures.get(op[1], 0) >= self.max_failures
            return ("status", op[1], "locked" if locked else "active")
        return ("error", "unknown operation")

    def _valid(self, principal: object, digest: object) -> bool:
        return isinstance(principal, str) and isinstance(digest, bytes)

    def _enroll(self, principal: object, digest: object) -> object:
        if not self._valid(principal, digest):
            return ("error", "malformed enroll")
        if principal in self.credentials:
            return ("denied", "already enrolled")
        self.credentials[principal] = digest
        return ("enrolled", principal)

    def _authenticate(self, principal: object, digest: object) -> object:
        if not self._valid(principal, digest):
            return ("error", "malformed authenticate")
        stored = self.credentials.get(principal)
        if stored is None:
            return ("denied", "unknown principal")
        if self.failures.get(principal, 0) >= self.max_failures:
            return ("denied", "locked")
        if stored != digest:
            self.failures[principal] = self.failures.get(principal, 0) + 1
            return ("denied", "bad credential")
        self.failures[principal] = 0
        return ("authenticated", principal)

    def _change(self, principal: object, old: object, new: object) -> object:
        if not (self._valid(principal, old) and isinstance(new, bytes)):
            return ("error", "malformed change")
        verdict = self._authenticate(principal, old)
        if verdict[0] != "authenticated":
            return verdict
        self.credentials[principal] = new
        return ("changed", principal)

    def snapshot(self) -> object:
        return (
            tuple(sorted(self.credentials.items())),
            tuple(sorted(self.failures.items())),
        )


class AuthenticationClient:
    """Typed wrapper over :class:`ServiceClient`."""

    def __init__(self, client: ServiceClient) -> None:
        self.client = client

    def enroll(self, principal: str, secret: bytes) -> int:
        """Register a principal's credential digest."""
        return self.client.submit(
            ("enroll", principal, credential_digest(principal, secret))
        )

    def authenticate(self, principal: str, secret: bytes) -> int:
        """Request a service-signed authentication verdict."""
        return self.client.submit(
            ("authenticate", principal, credential_digest(principal, secret))
        )

    def change(self, principal: str, old_secret: bytes, new_secret: bytes) -> int:
        """Rotate a credential, authorized by the old one."""
        return self.client.submit(
            (
                "change",
                principal,
                credential_digest(principal, old_secret),
                credential_digest(principal, new_secret),
            )
        )

    def status(self, principal: str) -> int:
        """Query lockout status."""
        return self.client.submit(("status", principal))
