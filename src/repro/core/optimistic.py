"""Optimistic atomic broadcast (Section 6, "Optimistic Protocols").

The paper: *"Optimistic protocols run very fast if no malicious
adversary is at work and all messages are delivered promptly.  If a
problem is detected (typically because liveness is violated), they may
switch into a more secure mode ... In our Byzantine context, one has to
make sure that safety is never violated."*  Kursawe and Shoup [23]
designed such a protocol; this module implements that idea on top of
this repository's stack:

**Fast path** (deterministic, leader-based, two certificate phases):

1. clients'/servers' payloads are forwarded to the epoch leader;
2. the leader assigns sequence numbers and broadcasts signed
   ``ORDER(seq, payload)`` messages;
3. every server broadcasts an ACK signature share; a strong quorum of
   shares forms a transferable *prepare certificate* — two conflicting
   payloads can never both be prepared for one sequence number;
4. servers that hold the prepare certificate broadcast a COMMIT share;
   a strong quorum of commit shares delivers (in sequence order).

**Fallback** (randomized, asynchronous — safety never at risk):

When progress stops (a watchdog the deployment drives however it
likes — *safety is independent of when or whether it fires*), servers
complain; complaints from an honest-containing set move everyone into
recovery.  Each server signs a *state*: its longest prepared prefix
with certificates.  A quorum of signed states is run through the
multi-valued Byzantine agreement with external validity; the decided
state set fixes the definitive prefix.  Because delivery required a
strong quorum of commit shares, every delivered payload is prepared at
an honest member of any quorum of states, so the decided prefix extends
every honest delivery — total order is preserved.  Afterwards the
instance runs in *pessimistic* mode: the randomized atomic broadcast
of :mod:`repro.core.atomic_broadcast`.

The measured contrast (benchmark E11): the fast path costs a fraction
of the randomized protocol per payload; under a leader-starving
adversary it stops, falls back, and continues correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from ..crypto.hashing import hash_bytes
from ..crypto.schnorr import Signature
from ..crypto.threshold_sig import QuorumCertificate
from .atomic_broadcast import AtomicBroadcast
from .multivalued_agreement import MultiValuedAgreement, MvbaDecision
from .protocol import Context, Protocol, SessionId

__all__ = [
    "OptForward",
    "OptOrder",
    "OptAck",
    "OptCommit",
    "OptComplain",
    "OptState",
    "OptimisticAtomicBroadcast",
    "opt_abc_session",
]


@dataclass(frozen=True)
class OptForward:
    payload: Hashable


@dataclass(frozen=True)
class OptOrder:
    seq: int
    payload: Hashable
    signature: Signature


@dataclass(frozen=True)
class OptAck:
    seq: int
    digest: bytes
    share: Signature


@dataclass(frozen=True)
class OptCommit:
    seq: int
    digest: bytes
    share: Signature


@dataclass(frozen=True)
class OptComplain:
    pass


@dataclass(frozen=True)
class OptState:
    entries: tuple  # ((seq, payload, prepare_cert), ...) contiguous from 1
    signature: Signature


def opt_abc_session(tag: object = 0) -> SessionId:
    return ("opt-abc", tag)


def _digest(payload: Hashable) -> bytes:
    return hash_bytes("opt-digest", payload)


def _order_statement(session: SessionId, seq: int, payload: Hashable) -> tuple:
    return ("opt-order", session, seq, payload)


def _ack_statement(session: SessionId, seq: int, digest: bytes) -> tuple:
    return ("opt-ack", session, seq, digest)


def _commit_statement(session: SessionId, seq: int, digest: bytes) -> tuple:
    return ("opt-commit", session, seq, digest)


def _state_statement(session: SessionId, entries: tuple) -> tuple:
    return ("opt-state", session, entries)


class OptimisticAtomicBroadcast(Protocol):
    """Fast-when-friendly atomic broadcast with a safe randomized fallback."""

    LEADER = 0

    def __init__(
        self,
        on_deliver: Callable[[Hashable, str], None] | None = None,
        watchdog_limit: int = 200,
    ) -> None:
        self.on_deliver = on_deliver
        self.watchdog_limit = watchdog_limit
        self.mode = "fast"  # fast -> recovering -> pessimistic
        self.queue: list[Hashable] = []
        self.delivered: set[Hashable] = set()
        self.delivered_log: list[tuple[Hashable, str]] = []
        # Leader bookkeeping.
        self._next_seq = 1
        self._ordered_payloads: set[Hashable] = set()
        # Replica bookkeeping (fast path).  Signature shares are stashed
        # unverified in acks/commits and batch-verified with one
        # multi-exp when a strong quorum could form; culprits move to
        # the *_bad sets, verified shares to *_valid.
        self.orders: dict[int, Hashable] = {}
        self.acks: dict[tuple[int, bytes], dict[int, Signature]] = {}
        self.ack_valid: dict[tuple[int, bytes], dict[int, Signature]] = {}
        self.ack_bad: dict[tuple[int, bytes], set[int]] = {}
        self.commits: dict[tuple[int, bytes], dict[int, Signature]] = {}
        self.commit_valid: dict[tuple[int, bytes], dict[int, Signature]] = {}
        self.commit_bad: dict[tuple[int, bytes], set[int]] = {}
        self.prepared: dict[int, tuple[Hashable, QuorumCertificate]] = {}
        self.committed: dict[int, Hashable] = {}
        self.commit_share_sent: set[int] = set()
        self.next_delivery = 1
        # Fallback bookkeeping.
        self.complaints: set[int] = set()
        self.complained = False
        self.states: dict[int, tuple] = {}
        self._mvba_started = False
        self._watchdog = 0
        # Pessimistic inner protocol.
        self.inner = AtomicBroadcast()

    # -- input ------------------------------------------------------------------

    def submit(self, ctx: Context, payload: Hashable) -> None:
        if payload in self.delivered or payload in self.queue:
            return
        self.queue.append(payload)
        if self.mode == "fast":
            ctx.broadcast(OptForward(payload))
        elif self.mode == "pessimistic":
            self.inner.submit(ctx, payload)

    def tick(self, ctx: Context) -> None:
        """Optional external watchdog pulse (deployments may drive this
        off local clocks).  Only liveness of the *fallback trigger*
        depends on it; safety never does."""
        self._note_activity(ctx, amount=1)

    # -- dispatch -----------------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        self.inner.on_deliver = lambda payload, rnd: self._deliver(
            ctx, payload, f"pessimistic-round-{rnd}"
        )

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        if isinstance(message, OptForward):
            self._on_forward(ctx, sender, message.payload)
        elif isinstance(message, OptOrder):
            self._on_order(ctx, sender, message)
        elif isinstance(message, OptAck):
            self._on_ack(ctx, sender, message)
        elif isinstance(message, OptCommit):
            self._on_commit(ctx, sender, message)
        elif isinstance(message, OptComplain):
            self._on_complain(ctx, sender)
        elif isinstance(message, OptState):
            self._on_state(ctx, sender, message)
        else:
            # Pessimistic-mode traffic (AbcProposal etc.) and the junk a
            # corrupted server may send.
            self.inner.on_message(ctx, sender, message)
        self._note_activity(ctx, amount=1)

    # -- fast path ----------------------------------------------------------------

    def _on_forward(self, ctx: Context, sender: int, payload: Hashable) -> None:
        if self.mode != "fast":
            if self.mode == "pessimistic" and isinstance(payload, Hashable):
                # Keep accepting inputs after the switch.
                self.inner.submit(ctx, payload)
            return
        if payload not in self.queue and payload not in self.delivered:
            self.queue.append(payload)
        if ctx.party != self.LEADER or payload in self._ordered_payloads:
            return
        self._ordered_payloads.add(payload)
        seq = self._next_seq
        self._next_seq += 1
        signature = ctx.keys.signing_key.sign(
            _order_statement(ctx.session, seq, payload), ctx.rng
        )
        ctx.broadcast(OptOrder(seq, payload, signature))

    def _on_order(self, ctx: Context, sender: int, message: OptOrder) -> None:
        if self.mode != "fast" or sender != self.LEADER:
            return
        seq = message.seq
        if not isinstance(seq, int) or seq < 1 or seq in self.orders:
            return
        key = ctx.public.verify_keys[self.LEADER]
        if not key.verify(
            _order_statement(ctx.session, seq, message.payload), message.signature
        ):
            return
        self.orders[seq] = message.payload
        digest = _digest(message.payload)
        share = ctx.keys.cert_strong.sign_share(
            _ack_statement(ctx.session, seq, digest), ctx.rng
        )
        ctx.broadcast(OptAck(seq, digest, share))

    def _screen_shares(
        self,
        ctx: Context,
        statement: tuple,
        key: tuple[int, bytes],
        unchecked: dict[tuple[int, bytes], dict[int, Signature]],
        valid: dict[tuple[int, bytes], dict[int, Signature]],
        bad: dict[tuple[int, bytes], set[int]],
    ) -> dict[int, Signature] | None:
        """Batch-verify a bucket once a strong quorum could form.

        Returns the verified shares when they form a strong quorum,
        ``None`` otherwise.  Invalid shares are pinpointed (per-share
        fallback inside ``verify_shares``) and their senders banned for
        this ``(seq, digest)``.
        """
        bucket = unchecked.get(key, {})
        known = valid.setdefault(key, {})
        if not ctx.quorum.is_strong_quorum(set(known) | set(bucket)):
            return None
        if bucket:
            screened = ctx.public.cert_strong.verify_shares(statement, bucket)
            culprits = bad.setdefault(key, set())
            for party in bucket:
                if party not in screened:
                    culprits.add(party)
            known.update(screened)
            bucket.clear()
        if ctx.quorum.is_strong_quorum(known):
            return known
        return None

    def _on_ack(self, ctx: Context, sender: int, message: OptAck) -> None:
        if self.mode != "fast":
            return
        if not isinstance(message.seq, int) or not isinstance(message.digest, bytes):
            return
        key = (message.seq, message.digest)
        if sender in self.ack_bad.get(key, ()):
            return
        if sender not in self.ack_valid.get(key, {}):
            self.acks.setdefault(key, {}).setdefault(sender, message.share)
        if message.seq in self.prepared:
            return
        payload = self.orders.get(message.seq)
        if payload is None or _digest(payload) != message.digest:
            return
        statement = _ack_statement(ctx.session, message.seq, message.digest)
        shares = self._screen_shares(
            ctx, statement, key, self.acks, self.ack_valid, self.ack_bad
        )
        if shares is not None:
            certificate = ctx.public.cert_strong.combine(statement, shares)
            self.prepared[message.seq] = (payload, certificate)
            commit_share = ctx.keys.cert_strong.sign_share(
                _commit_statement(ctx.session, message.seq, message.digest), ctx.rng
            )
            self.commit_share_sent.add(message.seq)
            ctx.broadcast(OptCommit(message.seq, message.digest, commit_share))

    def _on_commit(self, ctx: Context, sender: int, message: OptCommit) -> None:
        if self.mode != "fast":
            return
        if not isinstance(message.seq, int) or not isinstance(message.digest, bytes):
            return
        key = (message.seq, message.digest)
        if sender in self.commit_bad.get(key, ()):
            return
        if sender not in self.commit_valid.get(key, {}):
            self.commits.setdefault(key, {}).setdefault(sender, message.share)
        payload = self.orders.get(message.seq)
        if payload is None or _digest(payload) != message.digest:
            return
        if message.seq in self.committed:
            return
        statement = _commit_statement(ctx.session, message.seq, message.digest)
        shares = self._screen_shares(
            ctx, statement, key, self.commits, self.commit_valid, self.commit_bad
        )
        if shares is not None:
            self.committed[message.seq] = payload
            self._drain_fast(ctx)

    def _drain_fast(self, ctx: Context) -> None:
        while self.next_delivery in self.committed:
            payload = self.committed[self.next_delivery]
            self._deliver(ctx, payload, f"fast-seq-{self.next_delivery}")
            self.next_delivery += 1

    # -- watchdog & complaints -----------------------------------------------------

    def _note_activity(self, ctx: Context, amount: int) -> None:
        if self.mode != "fast" or self.complained:
            return
        pending = [p for p in self.queue if p not in self.delivered]
        if not pending:
            self._watchdog = 0
            return
        self._watchdog += amount
        if self._watchdog >= self.watchdog_limit:
            self._complain(ctx)

    def _complain(self, ctx: Context) -> None:
        if self.complained:
            return
        self.complained = True
        ctx.broadcast(OptComplain())

    def _on_complain(self, ctx: Context, sender: int) -> None:
        self.complaints.add(sender)
        if ctx.quorum.contains_honest(self.complaints):
            # An honest server complained: join the complaint and start
            # recovery once everyone must have noticed.
            self._complain(ctx)
            self._enter_recovery(ctx)

    # -- fallback -----------------------------------------------------------------

    def _enter_recovery(self, ctx: Context) -> None:
        if self.mode != "fast":
            return
        self.mode = "recovering"
        entries = []
        for seq in range(1, len(self.prepared) + 2):
            if seq not in self.prepared:
                break
            payload, certificate = self.prepared[seq]
            entries.append((seq, payload, certificate))
        entries_tuple = tuple(entries)
        signature = ctx.keys.signing_key.sign(
            _state_statement(ctx.session, entries_tuple), ctx.rng
        )
        ctx.broadcast(OptState(entries_tuple, signature))

    def _state_valid(self, ctx: Context, sender: int, message: OptState) -> bool:
        key = ctx.public.verify_keys.get(sender)
        if key is None or not isinstance(message.entries, tuple):
            return False
        if not key.verify(
            _state_statement(ctx.session, message.entries), message.signature
        ):
            return False
        return self._entries_valid(ctx, message.entries)

    def _entries_valid(self, ctx: Context, entries: tuple) -> bool:
        for index, entry in enumerate(entries):
            if not (isinstance(entry, tuple) and len(entry) == 3):
                return False
            seq, payload, certificate = entry
            if seq != index + 1:
                return False
            statement = _ack_statement(ctx.session, seq, _digest(payload))
            if not isinstance(certificate, QuorumCertificate):
                return False
            if not ctx.public.cert_strong.verify(statement, certificate):
                return False
        return True

    def _on_state(self, ctx: Context, sender: int, message: OptState) -> None:
        if sender in self.states or not self._state_valid(ctx, sender, message):
            return
        # A valid state is recorded in every mode (it may arrive before
        # this server noticed the complaints) and doubles as a complaint.
        self.states[sender] = (sender, message.entries, message.signature)
        self.complaints.add(sender)
        if self.mode == "fast" and ctx.quorum.contains_honest(self.complaints):
            self._complain(ctx)
            self._enter_recovery(ctx)
        if self.mode != "recovering" or self._mvba_started:
            return
        if not ctx.quorum.is_quorum(self.states):
            return
        self._mvba_started = True
        proposal = tuple(sorted(self.states.values()))
        session: SessionId = ("mvba", (ctx.session, "fallback"))
        ctx.spawn(
            session,
            MultiValuedAgreement(proposal, predicate=self._proposal_predicate(ctx)),
            on_output=lambda decision: self._on_fallback_decision(ctx, decision),
        )

    def _proposal_predicate(self, ctx: Context) -> Callable[[object], bool]:
        quorum = ctx.quorum
        verify_keys = ctx.public.verify_keys
        session = ctx.session
        entries_valid = self._entries_valid

        def predicate(value: object) -> bool:
            if not isinstance(value, tuple) or not value:
                return False
            senders = []
            for item in value:
                if not (isinstance(item, tuple) and len(item) == 3):
                    return False
                sender, entries, signature = item
                key = verify_keys.get(sender)
                if key is None or not isinstance(entries, tuple):
                    return False
                if not key.verify(_state_statement(session, entries), signature):
                    return False
                if not entries_valid(ctx, entries):
                    return False
                senders.append(sender)
            if len(set(senders)) != len(senders):
                return False
            return quorum.is_quorum(senders)

        return predicate

    def _on_fallback_decision(self, ctx: Context, decision: object) -> None:
        if not isinstance(decision, MvbaDecision) or self.mode != "recovering":
            return
        best: tuple = ()
        for _sender, entries, _sig in decision.value:
            if len(entries) > len(best):
                best = entries
        for seq, payload, _cert in best:
            self._deliver(ctx, payload, f"fallback-seq-{seq}")
        self.mode = "pessimistic"
        for payload in list(self.queue):
            if payload not in self.delivered:
                self.inner.submit(ctx, payload)

    # -- delivery -------------------------------------------------------------------

    def _deliver(self, ctx: Context, payload: Hashable, origin: str) -> None:
        if payload in self.delivered:
            return
        self.delivered.add(payload)
        self.delivered_log.append((payload, origin))
        self.queue = [p for p in self.queue if p != payload]
        if self.on_deliver is not None:
            self.on_deliver(payload, origin)
