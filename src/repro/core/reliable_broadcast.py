"""Reliable broadcast — optimized Bracha protocol (Section 3, [5]).

Specification: all honest parties deliver the same set of messages,
including everything broadcast by honest senders; nothing is guaranteed
about order, and a corrupted sender may cause some identical value (or
nothing) to be delivered.

Protocol (per session ``("rbc", sender, tag)``):

1. the sender broadcasts ``SEND(m)``;
2. on the first valid ``SEND``, a party broadcasts ``ECHO(m)``;
3. on a quorum of ``ECHO(m)`` (generalized ``n-t``), or on an
   honest-containing set of ``READY(m)`` (generalized ``t+1``,
   Bracha's amplification step), a party broadcasts ``READY(m)``;
4. on a strong quorum of ``READY(m)`` (generalized ``2t+1``) the party
   delivers ``m``.

The quorum thresholds are the Section 4.2 substitutions, so the same
code runs the classical threshold and the generalized-structure
systems.  An optional validation predicate restricts which payloads a
party is willing to echo (used for external validity higher up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from .protocol import Context, Protocol, SessionId

__all__ = ["RbcSend", "RbcEcho", "RbcReady", "ReliableBroadcast", "rbc_session"]


@dataclass(frozen=True)
class RbcSend:
    value: Hashable


@dataclass(frozen=True)
class RbcEcho:
    value: Hashable


@dataclass(frozen=True)
class RbcReady:
    value: Hashable


def rbc_session(sender: int, tag: object) -> SessionId:
    return ("rbc", sender, tag)


class ReliableBroadcast(Protocol):
    """One instance per (sender, tag); outputs the delivered value."""

    def __init__(
        self,
        sender: int,
        value: Hashable | None = None,
        validate: Callable[[Hashable], bool] | None = None,
    ) -> None:
        self.sender = sender
        self.value = value  # only meaningful on the sender
        self.validate = validate
        self.echoed = False
        self.readied = False
        self.delivered = False
        self.echoes: dict[Hashable, set[int]] = {}
        self.readies: dict[Hashable, set[int]] = {}

    # -- protocol ----------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        if ctx.party == self.sender and self.value is not None:
            ctx.broadcast(RbcSend(self.value))

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        if isinstance(message, RbcSend):
            self._on_send(ctx, sender, message.value)
        elif isinstance(message, RbcEcho):
            self._on_echo(ctx, sender, message.value)
        elif isinstance(message, RbcReady):
            self._on_ready(ctx, sender, message.value)
        # anything else: Byzantine junk, ignored

    def _acceptable(self, value: Hashable) -> bool:
        if self.validate is None:
            return True
        try:
            return bool(self.validate(value))
        except Exception:
            return False

    def _on_send(self, ctx: Context, sender: int, value: Hashable) -> None:
        if sender != self.sender or self.echoed or not self._acceptable(value):
            return
        self.echoed = True
        ctx.broadcast(RbcEcho(value))

    def _on_echo(self, ctx: Context, sender: int, value: Hashable) -> None:
        if not self._acceptable(value):
            return
        supporters = self.echoes.setdefault(value, set())
        if sender in supporters:
            return
        supporters.add(sender)
        self._maybe_ready(ctx, value)

    def _on_ready(self, ctx: Context, sender: int, value: Hashable) -> None:
        if not self._acceptable(value):
            return
        supporters = self.readies.setdefault(value, set())
        if sender in supporters:
            return
        supporters.add(sender)
        self._maybe_ready(ctx, value)
        self._maybe_deliver(ctx, value)

    # -- rules ----------------------------------------------------------------

    def _maybe_ready(self, ctx: Context, value: Hashable) -> None:
        if self.readied:
            return
        echo_quorum = ctx.quorum.is_quorum(self.echoes.get(value, set()))
        ready_amplify = ctx.quorum.contains_honest(self.readies.get(value, set()))
        if echo_quorum or ready_amplify:
            self.readied = True
            ctx.broadcast(RbcReady(value))
            # Our own READY comes back through the network like all
            # other messages; no local shortcut.

    def _maybe_deliver(self, ctx: Context, value: Hashable) -> None:
        if self.delivered:
            return
        if ctx.quorum.is_strong_quorum(self.readies.get(value, set())):
            self.delivered = True
            ctx.output(value)
