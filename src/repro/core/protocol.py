"""Protocol framework: message-driven state machines over sessions.

Section 3 stresses that the broadcast stack is *modular*: secure causal
atomic broadcast sits on atomic broadcast, which sits on multi-valued
Byzantine agreement, which uses binary agreement and the broadcast
primitives.  Protocols here are objects addressed by a *session id*
(a tuple like ``("rbc", sender, tag)``); a per-server
:class:`~repro.core.runtime.ProtocolRuntime` routes incoming messages
to instances and lets protocols spawn sub-protocol instances, wiring
their outputs back via callbacks.

Protocols never see the network directly — only a :class:`Context`,
which also carries the party's keys, the quorum system (threshold or
generalized, Section 4.2) and a deterministic RNG.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

from ..adversary.quorums import QuorumSystem
from ..crypto.dealer import PartyKeys, PublicKeys

if TYPE_CHECKING:  # pragma: no cover
    from ..net.tracing import Trace
    from .runtime import ProtocolRuntime

__all__ = ["Context", "Protocol", "SessionId"]

SessionId = tuple


class Protocol:
    """A message-driven protocol instance bound to one session."""

    def on_start(self, ctx: "Context") -> None:
        """Called once when the instance is spawned."""

    def on_message(self, ctx: "Context", sender: int, message: object) -> None:
        """Called for every message addressed to this session."""
        raise NotImplementedError


class Context:
    """Everything a protocol instance may touch.

    Attributes:
        party: this server's id.
        session: the instance's session id.
        public: the dealer's public key bundle.
        keys: this server's private key bundle.
        quorum: the quorum system (Section 4.2 rules).
        rng: per-server deterministic randomness.
    """

    def __init__(self, runtime: "ProtocolRuntime", session: SessionId) -> None:
        self._runtime = runtime
        self.session = session

    # -- identity and keys ---------------------------------------------------

    @property
    def party(self) -> int:
        return self._runtime.party

    @property
    def n(self) -> int:
        return self._runtime.public.n

    @property
    def public(self) -> PublicKeys:
        return self._runtime.public

    @property
    def keys(self) -> PartyKeys:
        return self._runtime.keys

    @property
    def quorum(self) -> QuorumSystem:
        return self._runtime.public.quorum

    @property
    def rng(self) -> random.Random:
        return self._runtime.rng

    @property
    def trace(self) -> "Trace":
        return self._runtime.network.trace

    # -- communication ---------------------------------------------------------

    def send(self, recipient: int, message: object) -> None:
        """Point-to-point send within this session."""
        self._runtime.network.send(self.party, recipient, (self.session, message))

    def broadcast(self, message: object) -> None:
        """Send to all parties (including self) within this session."""
        self._runtime.network.broadcast(self.party, (self.session, message))

    # -- composition -------------------------------------------------------------

    def spawn(
        self,
        session: SessionId,
        protocol: Protocol,
        on_output: Callable[[object], None] | None = None,
    ) -> Protocol:
        """Create a sub-protocol instance (idempotent per session)."""
        return self._runtime.spawn(session, protocol, on_output=on_output)

    def instance(self, session: SessionId) -> Protocol | None:
        return self._runtime.instances.get(session)

    def at(self, session: SessionId) -> "Context":
        """A context facade for another session on the same runtime —
        used by layers that must poke a sub-protocol instance directly
        (e.g. re-running a pending validation)."""
        return Context(self._runtime, session)

    def result(self, session: SessionId) -> object | None:
        """A finished session's output, or None if not (yet) produced."""
        return self._runtime.result(session)

    def output(self, value: object) -> None:
        """Emit this instance's result to whoever spawned/awaits it."""
        self._runtime.deliver_output(self.session, value)
