"""Atomic broadcast (Section 3) — total order via multi-valued agreement.

Follows the round structure the paper describes (after Chandra-Toueg
[12]): the parties proceed in global rounds; in round ``r``

1. every party digitally signs the batch of payloads it proposes and
   sends it to all others (``PROPOSAL``);
2. once properly signed proposals from a quorum (generalized ``n-t``)
   of distinct parties arrived, the party proposes that list to a
   multi-valued Byzantine agreement whose *external validity* predicate
   accepts exactly such lists — so whatever is decided consists of
   authentic, signed proposals, at least an honest-containing set of
   which come from honest parties;
3. all payloads in the decided list are delivered in a deterministic
   order (by proposer id, then position), deduplicated across rounds.

Liveness and fairness: a payload submitted to an honest-containing set
of honest parties appears in every candidate list of the next round
(any quorum of proposers intersects the holders in an honest party),
so the adversary cannot delay it once it is that widely known — the
paper's fairness claim, measured by experiment E6.

A party with nothing to send still joins every round it sees evidence
for (a valid proposal with a higher round number) with an empty batch,
so idle parties never block the quorum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from ..crypto.schnorr import Signature
from .multivalued_agreement import MultiValuedAgreement, MvbaDecision
from .protocol import Context, Protocol, SessionId

__all__ = ["AbcProposal", "AtomicBroadcast", "abc_session"]

_ROUND_HORIZON = 1024


@dataclass(frozen=True)
class AbcProposal:
    round: int
    batch: tuple
    signature: Signature


def abc_session(tag: object = 0) -> SessionId:
    return ("abc", tag)


def _proposal_statement(session: SessionId, r: int, batch: tuple) -> tuple:
    return ("abc-proposal", session, r, batch)


class AtomicBroadcast(Protocol):
    """Long-lived totally-ordered broadcast; delivers via a callback.

    ``on_deliver(payload, round)`` is invoked exactly once per payload,
    in the same order at every honest party.
    """

    def __init__(
        self, on_deliver: Callable[[Hashable, int], None] | None = None
    ) -> None:
        self.on_deliver = on_deliver
        self.queue: list[Hashable] = []
        self.delivered: set[Hashable] = set()
        self.delivered_log: list[tuple[Hashable, int]] = []
        self.round = 0  # last completed round
        self.active_round: int | None = None
        self.proposals: dict[int, dict[int, tuple[tuple, Signature]]] = {}
        self.agreement_started: set[int] = set()

    # -- input ------------------------------------------------------------------

    def submit(self, ctx: Context, payload: Hashable) -> None:
        """a-broadcast: enqueue a payload for total ordering."""
        if payload in self.delivered or payload in self.queue:
            return
        self.queue.append(payload)
        self._maybe_start_round(ctx)

    # -- round lifecycle -----------------------------------------------------------

    def _maybe_start_round(self, ctx: Context) -> None:
        if self.active_round is not None:
            return
        next_round = self.round + 1
        have_input = any(p not in self.delivered for p in self.queue)
        others_active = bool(self.proposals.get(next_round))
        if not have_input and not others_active:
            return
        self.active_round = next_round
        batch = tuple(p for p in self.queue if p not in self.delivered)
        statement = _proposal_statement(ctx.session, next_round, batch)
        signature = ctx.keys.signing_key.sign(statement, ctx.rng)
        ctx.broadcast(AbcProposal(next_round, batch, signature))
        self._maybe_start_agreement(ctx)

    def resume_at(self, ctx: Context, round_number: int) -> None:
        """Rejoin the round structure after recovery (Section 6).

        A restarting party may have opened a low-numbered round before
        state transfer told it how far the others have progressed; that
        round can never complete (nobody else will propose in it), so
        abandon it, fast-forward to the recovered round, and re-enter at
        the first undecided slot — for which proposals have usually
        already been collected while recovery was in flight.
        """
        self.round = max(self.round, round_number)
        self.active_round = None
        for stale in [r for r in self.proposals if r <= self.round]:
            del self.proposals[stale]
        self._maybe_start_round(ctx)

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        if not isinstance(message, AbcProposal):
            return
        r = message.round
        if not isinstance(r, int) or not self.round < r <= self.round + _ROUND_HORIZON:
            return
        if not isinstance(message.batch, tuple):
            return
        statement = _proposal_statement(ctx.session, r, message.batch)
        key = ctx.public.verify_keys.get(sender)
        if key is None or not key.verify(statement, message.signature):
            return
        self.proposals.setdefault(r, {}).setdefault(
            sender, (message.batch, message.signature)
        )
        if self.active_round is None:
            self._maybe_start_round(ctx)
        self._maybe_start_agreement(ctx)

    def _maybe_start_agreement(self, ctx: Context) -> None:
        r = self.active_round
        if r is None or r in self.agreement_started:
            return
        collected = self.proposals.get(r, {})
        if not ctx.quorum.is_quorum(collected):
            return
        self.agreement_started.add(r)
        candidate = tuple(
            sorted((j, batch, sig) for j, (batch, sig) in collected.items())
        )
        predicate = self._list_predicate(ctx, r)
        ctx.spawn(
            ("mvba", (ctx.session, r)),
            MultiValuedAgreement(candidate, predicate=predicate),
            on_output=lambda decision, rr=r: self._on_decision(ctx, rr, decision),
        )

    def _list_predicate(self, ctx: Context, r: int) -> Callable[[object], bool]:
        """External validity: a quorum of distinct, properly signed proposals."""
        public = ctx.public
        quorum = ctx.quorum
        session = ctx.session

        def predicate(value: object) -> bool:
            if not isinstance(value, tuple) or not value:
                return False
            senders = []
            for entry in value:
                if not (isinstance(entry, tuple) and len(entry) == 3):
                    return False
                j, batch, sig = entry
                if not isinstance(j, int) or not isinstance(batch, tuple):
                    return False
                key = public.verify_keys.get(j)
                if key is None:
                    return False
                if not key.verify(_proposal_statement(session, r, batch), sig):
                    return False
                senders.append(j)
            if len(set(senders)) != len(senders):
                return False
            return quorum.is_quorum(senders)

        return predicate

    # -- delivery ----------------------------------------------------------------

    def _on_decision(self, ctx: Context, r: int, decision: object) -> None:
        if not isinstance(decision, MvbaDecision) or r != self.round + 1:
            return
        for j, batch, _sig in sorted(decision.value):
            for payload in batch:
                if payload in self.delivered:
                    continue
                self.delivered.add(payload)
                self.delivered_log.append((payload, r))
                if self.on_deliver is not None:
                    self.on_deliver(payload, r)
        self.queue = [p for p in self.queue if p not in self.delivered]
        self.round = r
        self.active_round = None
        ctx.trace.bump("abc.rounds")
        self._maybe_start_round(ctx)
