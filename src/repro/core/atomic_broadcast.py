"""Atomic broadcast (Section 3) — total order via multi-valued agreement.

Follows the round structure the paper describes (after Chandra-Toueg
[12]): the parties proceed in global rounds; in round ``r``

1. every party assembles a *batch* of payloads (bounded by
   :class:`AbcConfig` — a payload-count cap and a canonical-encoding
   byte budget), digitally signs the batch *digest* and sends batch and
   signature to all others (``PROPOSAL``);
2. once properly signed proposals from a quorum (generalized ``n-t``)
   of distinct parties arrived, the party proposes the list of
   ``(proposer, digest, signature)`` entries to a multi-valued
   Byzantine agreement whose *external validity* predicate accepts
   exactly such lists — so whatever is decided consists of authentic,
   signed proposals, at least an honest-containing set of which come
   from honest parties.  Because signatures and MVBA inputs carry
   digests, neither scales with batch bytes;
3. all payloads in the batches behind the decided digest list are
   delivered in a deterministic order (by proposer id, then position
   within the batch), deduplicated across rounds.  A digest whose batch
   has not arrived yet is fetched first (``AbcBatchRequest``); the
   validity predicate refuses to endorse a candidate before holding
   every referenced batch, so any commit certificate doubles as an
   availability proof — a quorum, hence an honest-containing set,
   stored the bytes — and the fetch always terminates.

Pipelining: up to ``pipeline_depth`` rounds run concurrently — round
``k+1``'s proposal exchange and quorum collection proceed while round
``k``'s agreement is still deciding.  Each concurrent MVBA is tagged
with its round number inside the session id, so instances never
collide.  Decisions arriving out of order are buffered and applied
strictly in round order, which keeps delivery identical at every
honest party.

Liveness and fairness: a payload submitted to an honest-containing set
of honest parties appears in every candidate list of the next round
(any quorum of proposers intersects the holders in an honest party),
so the adversary cannot delay it once it is that widely known — the
paper's fairness claim, measured by experiment E6.

A party with nothing to send still joins every round it sees evidence
for (a valid proposal with a higher round number) with an empty batch,
so idle parties never block the quorum.  Proposals further ahead than
the pipeline window (depth plus a small slack) are *not* buffered —
a Byzantine sender can no longer stash one signed proposal per round
across the whole horizon — but a validly signed proposal that far
ahead is evidence this party fell behind; once an honest-containing
set of distinct signers provided such evidence, the ``on_lag`` hook
fires so the host can trigger state transfer (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from ..crypto import hashing
from ..crypto.schnorr import Signature
from .multivalued_agreement import MultiValuedAgreement, MvbaDecision
from .protocol import Context, Protocol, SessionId

__all__ = [
    "AbcBatch",
    "AbcBatchRequest",
    "AbcConfig",
    "AbcProposal",
    "AbcRejoin",
    "AtomicBroadcast",
    "abc_session",
    "batch_digest",
    "proposal_statement",
]

_ROUND_HORIZON = 1024


@dataclass(frozen=True)
class AbcConfig:
    """Throughput knobs (docs/PERFORMANCE.md, "Throughput: batching &
    pipelining").

    ``max_batch``: most payloads a single proposal may carry.
    ``max_batch_bytes``: canonical-encoding byte budget per batch; the
    first payload always fits, so an oversized payload still ships
    alone rather than starving.
    ``pipeline_depth``: rounds allowed in flight beyond the last
    delivered one (1 reproduces the paper's one-round-at-a-time
    schedule).
    ``buffer_slack``: extra future rounds whose proposals are buffered
    beyond the pipeline window; anything further ahead is dropped and
    counted as lag evidence instead.
    """

    max_batch: int = 64
    max_batch_bytes: int = 1 << 16
    pipeline_depth: int = 1
    buffer_slack: int = 8


@dataclass(frozen=True)
class AbcProposal:
    round: int
    batch: tuple
    signature: Signature


@dataclass(frozen=True)
class AbcBatchRequest:
    """Ask peers for the batch behind a digest referenced by a round."""

    round: int
    digest: bytes


@dataclass(frozen=True)
class AbcBatch:
    """Answer to :class:`AbcBatchRequest`; self-authenticating via the
    digest, so no signature is needed."""

    digest: bytes
    batch: tuple


@dataclass(frozen=True)
class AbcRejoin:
    """A recovered party asks peers to re-send their in-flight
    proposals (bounded buffering dropped the ones that arrived while it
    was down)."""

    round: int


def abc_session(tag: object = 0) -> SessionId:
    return ("abc", tag)


def batch_digest(batch: tuple) -> bytes:
    """Collision-resistant digest over the canonical batch encoding."""
    return hashing.hash_bytes("abc-batch", batch)


def proposal_statement(session: SessionId, r: int, digest: bytes) -> tuple:
    return ("abc-proposal", session, r, digest)


class AtomicBroadcast(Protocol):
    """Long-lived totally-ordered broadcast; delivers via a callback.

    ``on_deliver(payload, round)`` is invoked exactly once per payload,
    in the same order at every honest party.  ``on_lag()`` (optional)
    fires when an honest-containing set of signers is provably far
    ahead of this party's round window.
    """

    def __init__(
        self,
        on_deliver: Callable[[Hashable, int], None] | None = None,
        config: AbcConfig | None = None,
    ) -> None:
        self.on_deliver = on_deliver
        self.on_lag: Callable[[], None] | None = None
        self.config = config if config is not None else AbcConfig()
        self.queue: list[Hashable] = []
        self.queued: set[Hashable] = set()
        self.delivered: set[Hashable] = set()
        self.delivered_log: list[tuple[Hashable, int]] = []
        self.round = 0  # last delivered round
        # Highest round this party signed a proposal for.  Never
        # regresses — an honest party must not sign two different
        # batches for the same round number, even across recovery.
        self.highest_started = 0
        self.in_flight: set[Hashable] = set()
        # Bumped by rebase(): agreements spawned for an earlier
        # generation (a closed session) are ignored when they complete,
        # so an old-session round can never collide with the round of
        # the same number restarted under the successor session.
        self.generation = 0
        # Our own proposals by round: (batch, digest, signature).
        # Recently delivered rounds are retained (buffer_slack deep) so
        # rejoining parties can ask for an exact re-send.
        self.proposed: dict[int, tuple[tuple, bytes, Signature]] = {}
        self.proposals: dict[int, dict[int, tuple[bytes, Signature]]] = {}
        self.batches: dict[bytes, tuple] = {}
        self.requested: set[bytes] = set()
        self.agreement_started: set[int] = set()
        self.decisions: dict[int, tuple] = {}
        # Digests decided in recently delivered rounds, kept so lagging
        # peers can still fetch the batches behind them.
        self._recent_digests: dict[int, frozenset[bytes]] = {}
        self.lag_reports: dict[int, int] = {}
        self._lag_notified = False
        self.payloads_delivered = 0
        self.rounds_delivered = 0
        self._occupancy_sum = 0
        self._occupancy_samples = 0

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Throughput counters for the e2e bench (docs/PERFORMANCE.md)."""
        rounds = self.rounds_delivered
        mean_batch = self.payloads_delivered / rounds if rounds else 0.0
        occupancy = (
            self._occupancy_sum / self._occupancy_samples
            if self._occupancy_samples
            else 0.0
        )
        return {
            "rounds": float(rounds),
            "delivered": float(self.payloads_delivered),
            "mean_batch": mean_batch,
            "pipeline_occupancy": occupancy,
        }

    def _window(self) -> int:
        return self.config.pipeline_depth + self.config.buffer_slack

    # -- input ------------------------------------------------------------------

    def submit(self, ctx: Context, payload: Hashable) -> None:
        """a-broadcast: enqueue a payload for total ordering (O(1))."""
        if payload in self.delivered or payload in self.queued:
            return
        self.queue.append(payload)
        self.queued.add(payload)
        self._maybe_start_rounds(ctx)

    # -- round lifecycle -----------------------------------------------------------

    def _select_batch(self) -> tuple:
        batch: list[Hashable] = []
        size = 0
        for payload in self.queue:
            if len(batch) >= self.config.max_batch:
                break
            if payload in self.delivered or payload in self.in_flight:
                continue
            cost = len(hashing.encode(payload))
            if batch and size + cost > self.config.max_batch_bytes:
                break  # stop rather than skip ahead: keeps FIFO fairness
            batch.append(payload)
            size += cost
        return tuple(batch)

    def _maybe_start_rounds(self, ctx: Context) -> None:
        if self.highest_started < self.round:
            self.highest_started = self.round
        while self.highest_started < self.round + self.config.pipeline_depth:
            nxt = self.highest_started + 1
            batch = self._select_batch()
            if not batch and not self.proposals.get(nxt):
                return
            self.highest_started = nxt
            digest = batch_digest(batch)
            statement = proposal_statement(ctx.session, nxt, digest)
            signature = ctx.keys.signing_key.sign(statement, ctx.rng)
            self.proposed[nxt] = (batch, digest, signature)
            self.batches.setdefault(digest, batch)
            self.in_flight.update(batch)
            ctx.broadcast(AbcProposal(nxt, batch, signature))
            self._maybe_start_agreement(ctx, nxt)

    def resume_at(self, ctx: Context, round_number: int) -> None:
        """Rejoin the round structure after recovery (Section 6).

        Fast-forward past everything the transferred log settled, drop
        state for rounds at or below it, and ask the peers to re-send
        their still-in-flight proposals — bounded buffering means the
        ones that arrived while this party lagged were not kept.  Any
        round this party already signed a proposal for stays off-limits
        for re-proposal (``highest_started`` never regresses), so
        recovery can never make an honest party equivocate.
        """
        self.round = max(self.round, round_number)
        if self.highest_started < self.round:
            self.highest_started = self.round
        for stale in [r for r in self.proposals if r <= self.round]:
            del self.proposals[stale]
        for stale in [r for r in self.decisions if r <= self.round]:
            del self.decisions[stale]
        self.agreement_started = {
            r for r in self.agreement_started if r > self.round
        }
        retain = self.round - self.config.buffer_slack
        for stale in [r for r in self.proposed if r <= retain]:
            del self.proposed[stale]
        for stale in [r for r in self._recent_digests if r <= retain]:
            del self._recent_digests[stale]
        self._sync_in_flight()
        self._gc_batches()
        self._refresh_lag()
        ctx.broadcast(AbcRejoin(self.round))
        self._maybe_start_rounds(ctx)

    def rebase(self, ctx: Context) -> None:
        """Carry this broadcast onto a successor session (epoch switch).

        The session that hosted it was closed and replaced by a
        tombstone, so protocol traffic for any round still in flight —
        proposal exchange, agreement sub-protocols — now lands on the
        tombstone and those rounds can never decide.  Abandon
        everything above the last *delivered* round and re-propose the
        undelivered payloads under ``ctx``'s (new) session.  Delivered
        history is untouched and round numbering continues where it
        left off, so journal rounds stay monotone across the switch.
        Restarting a round number this party already signed for is not
        equivocation: proposal statements bind the session id, so the
        same round under a different session is a different statement.
        A straggler agreement from the closed session that completes
        after the switch is discarded by the generation check in
        :meth:`_on_decision` rather than racing the restarted round.
        """
        base = self.round
        self.generation += 1
        self.highest_started = base
        for stale in [r for r in self.proposals if r > base]:
            del self.proposals[stale]
        for stale in [r for r in self.decisions if r > base]:
            del self.decisions[stale]
        for stale in [r for r in self.proposed if r > base]:
            del self.proposed[stale]
        self.agreement_started = {
            r for r in self.agreement_started if r <= base
        }
        self._sync_in_flight()
        self._gc_batches()
        self._refresh_lag()
        self._maybe_start_rounds(ctx)

    # -- message handling ---------------------------------------------------------

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        if isinstance(message, AbcProposal):
            self._on_proposal(ctx, sender, message)
        elif isinstance(message, AbcBatchRequest):
            self._on_batch_request(ctx, sender, message)
        elif isinstance(message, AbcBatch):
            self._on_batch(ctx, sender, message)
        elif isinstance(message, AbcRejoin):
            self._on_rejoin(ctx, sender, message)

    def _on_proposal(
        self, ctx: Context, sender: int, message: AbcProposal
    ) -> None:
        r = message.round
        if not isinstance(r, int) or not self.round < r <= self.round + _ROUND_HORIZON:
            return
        if not isinstance(message.batch, tuple):
            return
        digest = batch_digest(message.batch)
        statement = proposal_statement(ctx.session, r, digest)
        key = ctx.public.verify_keys.get(sender)
        if key is None or not key.verify(statement, message.signature):
            return
        if r > self.round + self._window():
            # Bounded buffering (a Byzantine sender can no longer stash
            # one proposal per round across the whole horizon) — but a
            # validly signed proposal this far ahead is lag evidence.
            self.lag_reports[sender] = max(self.lag_reports.get(sender, 0), r)
            self._maybe_report_lag(ctx)
            return
        self.proposals.setdefault(r, {}).setdefault(
            sender, (digest, message.signature)
        )
        self.batches.setdefault(digest, message.batch)
        self._maybe_start_rounds(ctx)
        self._maybe_start_agreement(ctx, r)
        self._retry_predicates(ctx)
        self._try_deliver(ctx)

    def _on_batch_request(
        self, ctx: Context, sender: int, message: AbcBatchRequest
    ) -> None:
        digest = message.digest
        if not isinstance(digest, bytes) or digest not in self.batches:
            return
        ctx.send(sender, AbcBatch(digest, self.batches[digest]))

    def _on_batch(self, ctx: Context, sender: int, message: AbcBatch) -> None:
        digest = message.digest
        if not isinstance(digest, bytes) or not isinstance(message.batch, tuple):
            return
        if digest not in self.requested:
            return  # only store what we asked for: bounded memory
        if batch_digest(message.batch) != digest:
            return
        self.batches.setdefault(digest, message.batch)
        self._retry_predicates(ctx)
        self._try_deliver(ctx)

    def _on_rejoin(self, ctx: Context, sender: int, message: AbcRejoin) -> None:
        base = message.round
        if not isinstance(base, int):
            return
        for r in sorted(self.proposed):
            if r <= base:
                continue
            batch, _digest, signature = self.proposed[r]
            ctx.send(sender, AbcProposal(r, batch, signature))

    def _maybe_report_lag(self, ctx: Context) -> None:
        if self.on_lag is None or self._lag_notified:
            return
        if not ctx.quorum.contains_honest(set(self.lag_reports)):
            return
        self._lag_notified = True
        self.on_lag()

    def _refresh_lag(self) -> None:
        horizon = self.round + self._window()
        self.lag_reports = {
            s: self.lag_reports[s]
            for s in sorted(self.lag_reports)
            if self.lag_reports[s] > horizon
        }
        if not self.lag_reports:
            self._lag_notified = False

    # -- agreement ----------------------------------------------------------------

    def _maybe_start_agreement(self, ctx: Context, r: int) -> None:
        if r in self.agreement_started:
            return
        if r <= self.round or r > self.highest_started:
            return
        collected = self.proposals.get(r, {})
        if not ctx.quorum.is_quorum(collected):
            return
        self.agreement_started.add(r)
        candidate = tuple(
            sorted((j, digest, sig) for j, (digest, sig) in collected.items())
        )
        predicate = self._list_predicate(ctx, r)
        generation = self.generation
        ctx.spawn(
            ("mvba", (ctx.session, r)),
            MultiValuedAgreement(candidate, predicate=predicate),
            on_output=lambda decision, rr=r, g=generation: self._on_decision(
                ctx, rr, decision, g
            ),
        )

    def _list_predicate(self, ctx: Context, r: int) -> Callable[[object], bool]:
        """External validity: a quorum of distinct, properly signed digests.

        Signatures cover the batch *digest*, so MVBA inputs stay O(n)
        regardless of batch bytes.  A party additionally refuses to
        endorse a candidate until it holds every referenced batch — a
        commit certificate therefore doubles as an availability proof
        (a quorum, hence an honest-containing set, stored the bytes),
        so the post-decision fetch in :meth:`_try_deliver` always
        terminates.  Missing batches are requested as a side effect,
        which also restores liveness when a Byzantine proposer withheld
        its batch from some honest parties.
        """
        public = ctx.public
        quorum = ctx.quorum
        session = ctx.session

        def predicate(value: object) -> bool:
            if not isinstance(value, tuple) or not value:
                return False
            senders = []
            for entry in value:
                if not (isinstance(entry, tuple) and len(entry) == 3):
                    return False
                j, digest, sig = entry
                if not isinstance(j, int) or not isinstance(digest, bytes):
                    return False
                key = public.verify_keys.get(j)
                if key is None:
                    return False
                if not key.verify(proposal_statement(session, r, digest), sig):
                    return False
                senders.append(j)
            if len(set(senders)) != len(senders):
                return False
            if not quorum.is_quorum(senders):
                return False
            missing = [d for _j, d, _s in value if d not in self.batches]
            if missing:
                self._request_batches(ctx, r, missing)
                return False
            return True

        return predicate

    def _request_batches(
        self, ctx: Context, r: int, digests: list[bytes]
    ) -> None:
        for digest in digests:
            if digest in self.requested:
                continue
            self.requested.add(digest)
            ctx.broadcast(AbcBatchRequest(r, digest))

    def _retry_predicates(self, ctx: Context) -> None:
        """Poke in-flight agreements whose CBC validations may pass now
        that a new batch arrived."""
        for r in sorted(self.agreement_started):
            if r <= self.round:
                continue
            sid: SessionId = ("mvba", (ctx.session, r))
            inst = ctx.instance(sid)
            if isinstance(inst, MultiValuedAgreement):
                inst.refresh_validation(ctx.at(sid))

    # -- delivery ----------------------------------------------------------------

    def _on_decision(
        self,
        ctx: Context,
        r: int,
        decision: object,
        generation: int | None = None,
    ) -> None:
        if generation is not None and generation != self.generation:
            return  # agreement of a closed session (see rebase())
        if not isinstance(decision, MvbaDecision):
            return
        if r <= self.round or r in self.decisions:
            return
        if not isinstance(decision.value, tuple):
            return
        self.decisions[r] = decision.value
        self._try_deliver(ctx)

    def _try_deliver(self, ctx: Context) -> None:
        """Apply buffered decisions strictly in round order."""
        progressed = False
        while True:
            r = self.round + 1
            value = self.decisions.get(r)
            if value is None:
                break
            missing = [d for _j, d, _s in value if d not in self.batches]
            if missing:
                # In-order delivery must wait for the payload bytes;
                # the deciding quorum stored them, so this terminates.
                self._request_batches(ctx, r, missing)
                break
            self._occupancy_sum += max(self.highest_started, r) - self.round
            self._occupancy_samples += 1
            for _j, digest, _sig in sorted(value):
                for payload in self.batches[digest]:
                    if payload in self.delivered:
                        continue
                    self.delivered.add(payload)
                    self.delivered_log.append((payload, r))
                    self.payloads_delivered += 1
                    if self.on_deliver is not None:
                        self.on_deliver(payload, r)
            del self.decisions[r]
            self.round = r
            self.rounds_delivered += 1
            self._recent_digests[r] = frozenset(d for _j, d, _s in value)
            self._cleanup_after_round(r)
            ctx.trace.bump("abc.rounds")
            progressed = True
        if progressed:
            self._refresh_lag()
            self._maybe_start_rounds(ctx)

    def _cleanup_after_round(self, r: int) -> None:
        for stale in [p for p in self.proposals if p <= r]:
            del self.proposals[stale]
        self.agreement_started.discard(r)
        retain = r - self.config.buffer_slack
        for stale in [p for p in self.proposed if p <= retain]:
            del self.proposed[stale]
        for stale in [p for p in self._recent_digests if p <= retain]:
            del self._recent_digests[stale]
        self.queue = [p for p in self.queue if p not in self.delivered]
        self.queued = set(self.queue)
        self._sync_in_flight()
        self._gc_batches()

    def _sync_in_flight(self) -> None:
        """Payloads masked from new batches: those in our own proposals
        for rounds that have not delivered yet."""
        masked: set[Hashable] = set()
        for r in sorted(self.proposed):
            if r > self.round:
                masked.update(self.proposed[r][0])
        self.in_flight = masked

    def _gc_batches(self) -> None:
        """Drop batch bytes no live round references.  Recently
        delivered rounds stay fetchable for lagging peers."""
        live: set[bytes] = set()
        for r in sorted(self.proposals):
            for j in sorted(self.proposals[r]):
                live.add(self.proposals[r][j][0])
        for r in sorted(self.decisions):
            for entry in self.decisions[r]:
                live.add(entry[1])
        for r in sorted(self.proposed):
            live.add(self.proposed[r][1])
        for r in sorted(self._recent_digests):
            live.update(self._recent_digests[r])
        self.batches = {
            d: self.batches[d] for d in sorted(live) if d in self.batches
        }
        self.requested &= live
