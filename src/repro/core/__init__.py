"""The paper's protocol stack (Section 3), bottom-up:

broadcast primitives (reliable, consistent) and randomized binary
Byzantine agreement; multi-valued agreement with external validity;
atomic broadcast; secure causal atomic broadcast.
"""

from .atomic_broadcast import AbcProposal, AtomicBroadcast, abc_session
from .binary_agreement import BinaryAgreement, aba_session
from .cks_agreement import CksBinaryAgreement, cks_session
from .consistent_broadcast import (
    CbcDelivery,
    ConsistentBroadcast,
    cbc_session,
    verify_commit_certificate,
)
from .optimistic import OptimisticAtomicBroadcast, opt_abc_session
from .multivalued_agreement import (
    MultiValuedAgreement,
    MvbaDecision,
    mvba_session,
)
from .protocol import Context, Protocol, SessionId
from .reliable_broadcast import ReliableBroadcast, rbc_session
from .runtime import ProtocolRuntime
from .secure_causal import SecureCausalBroadcast, sc_abc_session

__all__ = [
    "AbcProposal",
    "AtomicBroadcast",
    "abc_session",
    "BinaryAgreement",
    "aba_session",
    "CksBinaryAgreement",
    "cks_session",
    "CbcDelivery",
    "ConsistentBroadcast",
    "cbc_session",
    "verify_commit_certificate",
    "OptimisticAtomicBroadcast",
    "opt_abc_session",
    "MultiValuedAgreement",
    "MvbaDecision",
    "mvba_session",
    "Context",
    "Protocol",
    "SessionId",
    "ReliableBroadcast",
    "rbc_session",
    "ProtocolRuntime",
    "SecureCausalBroadcast",
    "sc_abc_session",
]
