"""Randomized binary Byzantine agreement with a threshold coin.

This is the agreement primitive of Section 3: optimal resilience
(``n > 3t`` / Q^3), complete asynchrony, and termination in an
*expected constant number of rounds* powered by the threshold
coin-tossing scheme of Cachin-Kursawe-Shoup [8].  Following CKS, the
protocol proceeds in rounds of two voting phases whose outcomes feed a
cryptographic common coin; the implementation uses the value-binding
vote structure (BVAL/AUX/CONF) so that validity is enforced by quorum
evidence rather than per-message signatures — CKS themselves note the
scheme remains correct when threshold signatures are replaced by sets
of messages, and the binding gate is what extends cleanly to the
generalized quorums of Section 4.2 (see DESIGN.md).

Properties (tested under adversarial schedules and corruptions):

* **Validity** — if all honest parties propose ``v``, every honest
  party decides ``v``; more generally a decided value was proposed by
  at least one honest party (values without honest support never pass
  the binding gate).
* **Agreement** — no two honest parties decide differently.
* **Termination** — every honest party decides after an expected
  constant number of rounds, for any scheduler; a Bracha-style DONE
  gadget then lets instances *halt* (stop sending) safely.

Round structure (session ``("aba", tag)``, round ``r``):

1. ``BVAL(r, b)`` — broadcast own estimate; re-broadcast any value
   supported by an honest-containing set (generalized ``t+1``); a
   value supported by a strong quorum (``2t+1``) becomes *bound*
   (enters ``bin_values``).
2. ``AUX(r, b)`` — vote for one bound value; wait until a quorum
   (``n-t``) of votes for bound values arrived.
3. ``CONF(r, V)`` — confirm the set of values seen; wait for a quorum
   of confirmations covered by ``bin_values``.
4. Release a share of coin ``(tag, r)``; combine a qualified set of
   valid shares into the common coin ``c``.
5. If the confirmed union is a single ``{b}``: adopt ``b``, and decide
   if ``b == c``.  Otherwise adopt ``c``.  Repeat.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.coin import CoinShare
from .protocol import Context, Protocol, SessionId

__all__ = [
    "AbaBval",
    "AbaAux",
    "AbaConf",
    "AbaCoinShare",
    "AbaDone",
    "BinaryAgreement",
    "aba_session",
]

# Byzantine parties may claim arbitrary round numbers; anything this far
# beyond the local round is discarded to bound state (honest parties
# never diverge remotely this much).
_ROUND_HORIZON = 64


@dataclass(frozen=True)
class AbaBval:
    round: int
    value: int


@dataclass(frozen=True)
class AbaAux:
    round: int
    value: int


@dataclass(frozen=True)
class AbaConf:
    round: int
    values: frozenset


@dataclass(frozen=True)
class AbaCoinShare:
    round: int
    share: CoinShare


@dataclass(frozen=True)
class AbaDone:
    value: int


def aba_session(tag: object) -> SessionId:
    return ("aba", tag)


class _RoundState:
    """All mutable per-round bookkeeping."""

    __slots__ = (
        "bval_sent",
        "bval_from",
        "bin_values",
        "aux_sent",
        "aux_from",
        "conf_sent",
        "conf_from",
        "coin_released",
        "coin_shares",
        "coin_pending",
        "coin_bad",
        "coin_value",
        "finished",
    )

    def __init__(self) -> None:
        self.bval_sent: set[int] = set()
        self.bval_from: dict[int, set[int]] = {0: set(), 1: set()}
        self.bin_values: set[int] = set()
        self.aux_sent = False
        self.aux_from: dict[int, int] = {}
        self.conf_sent = False
        self.conf_from: dict[int, frozenset] = {}
        self.coin_released = False
        self.coin_shares: dict[int, CoinShare] = {}
        self.coin_pending: dict[int, CoinShare] = {}
        self.coin_bad: set[int] = set()
        self.coin_value: int | None = None
        self.finished = False


class BinaryAgreement(Protocol):
    """One agreement instance; outputs the decided bit (0 or 1)."""

    def __init__(self, proposal: int) -> None:
        if proposal not in (0, 1):
            raise ValueError("proposal must be 0 or 1")
        self.proposal = proposal
        self.round = 0
        self.estimate = proposal
        self.decided: int | None = None
        self.halted = False
        self.done_sent = False
        self.done_from: dict[int, set[int]] = {0: set(), 1: set()}
        self.rounds: dict[int, _RoundState] = {}

    # -- lifecycle -----------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        self._enter_round(ctx, 1)

    def _state(self, r: int) -> _RoundState:
        state = self.rounds.get(r)
        if state is None:
            state = _RoundState()
            self.rounds[r] = state
        return state

    def _enter_round(self, ctx: Context, r: int) -> None:
        if self.halted:
            return
        self.round = r
        state = self._state(r)
        if self.estimate not in state.bval_sent:
            state.bval_sent.add(self.estimate)
            ctx.broadcast(AbaBval(r, self.estimate))
        # Messages for this round may have arrived early; re-evaluate.
        self._progress(ctx, r)

    # -- dispatch ---------------------------------------------------------------

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        if self.halted:
            return
        if isinstance(message, AbaDone):
            self._on_done(ctx, sender, message.value)
            return
        r = getattr(message, "round", None)
        if not isinstance(r, int) or not 1 <= r <= self.round + _ROUND_HORIZON:
            return
        state = self._state(r)
        if isinstance(message, AbaBval) and message.value in (0, 1):
            state.bval_from[message.value].add(sender)
        elif isinstance(message, AbaAux) and message.value in (0, 1):
            state.aux_from.setdefault(sender, message.value)
        elif isinstance(message, AbaConf):
            values = message.values
            if isinstance(values, frozenset) and values and values <= {0, 1}:
                state.conf_from.setdefault(sender, values)
        elif isinstance(message, AbaCoinShare):
            self._on_coin_share(ctx, sender, r, message.share)
        else:
            return
        if r <= self.round:
            self._progress(ctx, r)

    # -- round machinery -----------------------------------------------------------

    def _progress(self, ctx: Context, r: int) -> None:
        """Run every enabled rule for round ``r`` until quiescence."""
        if r != self.round or self.halted:
            return
        state = self._state(r)
        changed = True
        while changed and not self.halted and r == self.round:
            changed = False
            changed |= self._rule_bval(ctx, r, state)
            changed |= self._rule_aux(ctx, r, state)
            changed |= self._rule_conf(ctx, r, state)
            changed |= self._rule_coin(ctx, r, state)
            changed |= self._rule_advance(ctx, r, state)

    def _rule_bval(self, ctx: Context, r: int, state: _RoundState) -> bool:
        changed = False
        for b in (0, 1):
            supporters = state.bval_from[b]
            if b not in state.bval_sent and ctx.quorum.contains_honest(supporters):
                state.bval_sent.add(b)
                ctx.broadcast(AbaBval(r, b))
                changed = True
            if b not in state.bin_values and ctx.quorum.is_strong_quorum(supporters):
                state.bin_values.add(b)
                changed = True
        return changed

    def _rule_aux(self, ctx: Context, r: int, state: _RoundState) -> bool:
        if state.aux_sent or not state.bin_values:
            return False
        state.aux_sent = True
        # Vote for one bound value (smallest, deterministically).
        ctx.broadcast(AbaAux(r, min(state.bin_values)))
        return True

    def _rule_conf(self, ctx: Context, r: int, state: _RoundState) -> bool:
        if state.conf_sent:
            return False
        backed = {p for p, v in state.aux_from.items() if v in state.bin_values}
        if not ctx.quorum.is_quorum(backed):
            return False
        state.conf_sent = True
        seen = frozenset(state.aux_from[p] for p in backed)
        ctx.broadcast(AbaConf(r, seen))
        return True

    def _rule_coin(self, ctx: Context, r: int, state: _RoundState) -> bool:
        if state.coin_released or not self._conf_ready(ctx, state):
            return False
        state.coin_released = True
        share = ctx.keys.coin.share_for(self._coin_name(ctx, r), ctx.rng)
        ctx.broadcast(AbaCoinShare(r, share))
        return True

    def _conf_ready(self, ctx: Context, state: _RoundState) -> bool:
        backed = {
            p for p, vals in state.conf_from.items() if vals <= state.bin_values
        }
        return ctx.quorum.is_quorum(backed)

    def _confirmed_union(self, ctx: Context, state: _RoundState) -> set[int]:
        backed = {
            p for p, vals in state.conf_from.items() if vals <= state.bin_values
        }
        union: set[int] = set()
        for p in backed:
            union |= state.conf_from[p]
        return union

    def _coin_name(self, ctx: Context, r: int) -> tuple:
        return ("aba-coin", ctx.session, r)

    def _on_coin_share(self, ctx: Context, sender: int, r: int, share: CoinShare) -> None:
        """Stash a structurally sound share; verification is batched.

        Proofs are only checked once the pending set could open the
        coin — then the whole set is verified with one multi-exp
        (``CoinPublic.verify_shares``), which pinpoints and bans any
        culprits on failure.
        """
        state = self._state(r)
        if state.coin_value is not None or sender in state.coin_bad:
            return
        if sender in state.coin_shares or sender in state.coin_pending:
            return
        if not isinstance(share, CoinShare) or share.party != sender:
            return
        if share.name != self._coin_name(ctx, r):
            return
        state.coin_pending[sender] = share
        candidates = set(state.coin_shares) | set(state.coin_pending)
        if not ctx.public.access_scheme.is_qualified(candidates):
            return
        name = self._coin_name(ctx, r)
        valid = ctx.public.coin.verify_shares(name, state.coin_pending.values())
        for party in state.coin_pending:
            if party not in valid:
                state.coin_bad.add(party)
        state.coin_shares.update(valid)
        state.coin_pending.clear()
        if ctx.public.access_scheme.is_qualified(set(state.coin_shares)):
            state.coin_value = ctx.public.coin.combine(name, state.coin_shares)
            ctx.trace.bump("aba.coin_flips")

    def _rule_advance(self, ctx: Context, r: int, state: _RoundState) -> bool:
        if state.finished or state.coin_value is None:
            return False
        if not self._conf_ready(ctx, state):
            return False
        union = self._confirmed_union(ctx, state)
        if not union:
            return False
        state.finished = True
        coin = state.coin_value
        if union == {coin}:
            self.estimate = coin
            self._decide(ctx, coin)
        elif len(union) == 1:
            self.estimate = next(iter(union))
        else:
            self.estimate = coin
        ctx.trace.bump("aba.rounds")
        if not self.halted:
            self._enter_round(ctx, r + 1)
        return True

    # -- decision & termination gadget ------------------------------------------

    def _decide(self, ctx: Context, value: int) -> None:
        if self.decided is None:
            self.decided = value
            ctx.output(value)
        if not self.done_sent:
            self.done_sent = True
            ctx.broadcast(AbaDone(value))

    def _on_done(self, ctx: Context, sender: int, value: int) -> None:
        if value not in (0, 1):
            return
        self.done_from[value].add(sender)
        supporters = self.done_from[value]
        # An honest-containing set vouches for the decision: adopt it.
        if ctx.quorum.contains_honest(supporters):
            if self.decided is None:
                self.decided = value
                ctx.output(value)
            if not self.done_sent:
                self.done_sent = True
                ctx.broadcast(AbaDone(value))
        # A strong quorum of DONEs means every honest party will adopt
        # via the rule above from the already-sent messages: safe to halt.
        if ctx.quorum.is_strong_quorum(supporters):
            self.halted = True
