"""Per-server protocol runtime: session routing and composition.

One :class:`ProtocolRuntime` runs on every server.  It demultiplexes
incoming ``(session, message)`` payloads to protocol instances,
buffers messages that arrive before their instance exists (the
asynchronous network may deliver a sub-protocol's messages before the
local parent has spawned it), and auto-creates instances through
registered factories — this is how a server starts participating in a
reliable broadcast it has never heard of, or in round 7 of an agreement
it has not reached yet.
"""

from __future__ import annotations

import random
from typing import Callable

from ..crypto.dealer import PartyKeys, PublicKeys
from ..net.base import NetworkBackend
from ..net.simulator import Node
from .protocol import Context, Protocol, SessionId

__all__ = ["ProtocolRuntime"]

# Cap on messages buffered for a not-yet-spawned session; a Byzantine
# flood beyond this is dropped (honest protocols stay far below it).
_BUFFER_LIMIT = 4096


class ProtocolRuntime(Node):
    """The node a correct server attaches to the network."""

    def __init__(
        self,
        party: int,
        network: NetworkBackend,
        public: PublicKeys,
        keys: PartyKeys,
        seed: int = 0,
    ) -> None:
        self.party = party
        self.network = network
        self.public = public
        self.keys = keys
        self.rng = random.Random((seed << 20) ^ (party + 1))
        self.instances: dict[SessionId, Protocol] = {}
        self.outputs: dict[SessionId, object] = {}
        self._callbacks: dict[SessionId, list[Callable[[object], None]]] = {}
        self._buffered: dict[SessionId, list[tuple[int, object]]] = {}
        self._factories: list[tuple[str, Callable[[SessionId], Protocol | None]]] = []
        self._start_queue: list[SessionId] = []
        self._dispatching = False

    # -- composition ---------------------------------------------------------

    def register_factory(
        self, kind: str, factory: Callable[[SessionId], Protocol | None]
    ) -> None:
        """Auto-create instances for sessions whose first element is ``kind``.

        The factory may return ``None`` to reject a session (e.g. a
        malformed session id announced by a corrupted party).
        """
        self._factories.append((kind, factory))

    def spawn(
        self,
        session: SessionId,
        protocol: Protocol,
        on_output: Callable[[object], None] | None = None,
    ) -> Protocol:
        """Register an instance and replay any buffered messages to it."""
        existing = self.instances.get(session)
        if existing is not None:
            if on_output is not None:
                self._subscribe(session, on_output)
            return existing
        self.instances[session] = protocol
        if on_output is not None:
            self._subscribe(session, on_output)
        ctx = Context(self, session)
        protocol.on_start(ctx)
        for sender, message in self._buffered.pop(session, []):
            protocol.on_message(ctx, sender, message)
        return protocol

    def subscribe(self, session: SessionId, on_output: Callable[[object], None]) -> None:
        """Await a session's output without owning the instance."""
        self._subscribe(session, on_output)

    def _subscribe(self, session: SessionId, callback: Callable[[object], None]) -> None:
        if session in self.outputs:
            callback(self.outputs[session])
            return
        self._callbacks.setdefault(session, []).append(callback)

    def deliver_output(self, session: SessionId, value: object) -> None:
        """First output wins; later calls are ignored (idempotence)."""
        if session in self.outputs:
            return
        self.outputs[session] = value
        for callback in self._callbacks.pop(session, []):
            callback(value)

    def result(self, session: SessionId) -> object | None:
        return self.outputs.get(session)

    # -- node interface ----------------------------------------------------------

    def on_message(self, sender: int, payload: object) -> None:
        # Byzantine parties may send arbitrary junk; discard anything
        # that is not a well-formed (session, message) pair.
        if not (isinstance(payload, tuple) and len(payload) == 2):
            return
        session, message = payload
        if not (isinstance(session, tuple) and session):
            return
        instance = self.instances.get(session)
        if instance is None:
            instance = self._try_factories(session)
        if instance is None:
            queue = self._buffered.setdefault(session, [])
            if len(queue) < _BUFFER_LIMIT:
                queue.append((sender, message))
            return
        instance.on_message(Context(self, session), sender, message)

    def _try_factories(self, session: SessionId) -> Protocol | None:
        kind = session[0]
        for registered_kind, factory in self._factories:
            if registered_kind == kind:
                protocol = factory(session)
                if protocol is not None:
                    return self.spawn(session, protocol)
        return None
