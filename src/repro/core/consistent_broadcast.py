"""Consistent broadcast — echo broadcast with signature certificates.

The paper's variation of reliable broadcast (Section 3, cf. Reiter
[31]): it guarantees *uniqueness* of the delivered message — no two
honest parties deliver different values for the same (sender, tag) —
but relaxes totality: a party may never deliver and only learn of the
message's existence by other means (and can then ask for it, which is
exactly what multi-valued agreement does with the certificate).

Protocol (session ``("cbc", sender, tag)``):

1. sender broadcasts ``SEND(m)``;
2. every party that accepts ``m`` (first value, optional validation)
   signs ``(session, m)`` and returns the signature share to the
   sender;
3. once the signers form a quorum (generalized ``n-t``), the sender
   combines the shares into a *commit certificate* and broadcasts
   ``FINAL(m, certificate)``;
4. a valid ``FINAL`` delivers ``(m, certificate)``.

Uniqueness holds because two quorums intersect in an honest party, and
honest parties sign at most one value per session.  The certificate is
transferable third-party evidence — any party can hand it to any other
to prove the broadcast completed, which the agreement layer exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from ..crypto.dealer import PublicKeys
from ..crypto.schnorr import Signature
from ..crypto.threshold_sig import QuorumCertificate
from .protocol import Context, Protocol, SessionId

__all__ = [
    "CbcSend",
    "CbcEchoSignature",
    "CbcFinal",
    "CbcDelivery",
    "ConsistentBroadcast",
    "cbc_session",
    "verify_commit_certificate",
]


@dataclass(frozen=True)
class CbcSend:
    value: Hashable


@dataclass(frozen=True)
class CbcEchoSignature:
    signature: Signature


@dataclass(frozen=True)
class CbcFinal:
    value: Hashable
    certificate: QuorumCertificate


@dataclass(frozen=True)
class CbcDelivery:
    """What consistent broadcast outputs: the value plus its proof."""

    sender: int
    value: Hashable
    certificate: QuorumCertificate


def cbc_session(sender: int, tag: object) -> SessionId:
    return ("cbc", sender, tag)


def _statement(session: SessionId, value: Hashable) -> tuple:
    return ("cbc-commit", session, value)


def verify_commit_certificate(
    ctx_public: PublicKeys,
    session: SessionId,
    value: Hashable,
    certificate: QuorumCertificate,
) -> bool:
    """Check a transferred commit certificate (usable outside the instance)."""
    return ctx_public.cert_quorum.verify(_statement(session, value), certificate)


class ConsistentBroadcast(Protocol):
    """One instance per (sender, tag); outputs a :class:`CbcDelivery`."""

    def __init__(
        self,
        sender: int,
        value: Hashable | None = None,
        validate: Callable[[Hashable], bool] | None = None,
    ) -> None:
        self.sender = sender
        self.value = value
        self.validate = validate
        self.signed_value: Hashable | None = None
        # A SEND whose validation failed is stashed (wrapped in a
        # 1-tuple so a literal None value is representable) rather than
        # dropped: external predicates can be *temporarily* false —
        # e.g. a batch referenced by digest has not arrived yet — and
        # the spawning layer re-pokes us via retry_pending.
        self._pending_send: tuple[Hashable] | None = None
        self.shares: dict[int, Signature] = {}
        self.finalized = False
        self.delivered = False

    def on_start(self, ctx: Context) -> None:
        if ctx.party == self.sender and self.value is not None:
            ctx.broadcast(CbcSend(self.value))

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        if isinstance(message, CbcSend):
            self._on_send(ctx, sender, message.value)
        elif isinstance(message, CbcEchoSignature):
            self._on_share(ctx, sender, message.signature)
        elif isinstance(message, CbcFinal):
            self._on_final(ctx, sender, message)

    def _acceptable(self, value: Hashable) -> bool:
        if self.validate is None:
            return True
        try:
            return bool(self.validate(value))
        except Exception:
            return False

    def _on_send(self, ctx: Context, sender: int, value: Hashable) -> None:
        if sender != self.sender or self.signed_value is not None:
            return
        if not self._acceptable(value):
            self._pending_send = (value,)
            return
        self._accept(ctx, value)

    def _accept(self, ctx: Context, value: Hashable) -> None:
        self._pending_send = None
        self.signed_value = value
        share = ctx.keys.cert_quorum.sign_share(
            _statement(ctx.session, value), ctx.rng
        )
        ctx.send(self.sender, CbcEchoSignature(share))

    def retry_pending(self, ctx: Context) -> None:
        """Re-evaluate a stashed SEND whose validation failed earlier.

        Uniqueness is unaffected: ``signed_value`` still gates signing,
        so at most one value is ever endorsed per session.
        """
        if self.signed_value is not None or self._pending_send is None:
            return
        (value,) = self._pending_send
        if self._acceptable(value):
            self._accept(ctx, value)

    def _on_share(self, ctx: Context, sender: int, signature: Signature) -> None:
        if ctx.party != self.sender or self.finalized or self.value is None:
            return
        statement = _statement(ctx.session, self.value)
        if not ctx.public.cert_quorum.verify_share(statement, (sender, signature)):
            return
        self.shares[sender] = signature
        if ctx.quorum.is_quorum(self.shares):
            self.finalized = True
            certificate = ctx.public.cert_quorum.combine(statement, self.shares)
            ctx.broadcast(CbcFinal(self.value, certificate))

    def _on_final(self, ctx: Context, sender: int, message: CbcFinal) -> None:
        if self.delivered:
            return
        statement = _statement(ctx.session, message.value)
        if not ctx.public.cert_quorum.verify(statement, message.certificate):
            return
        self.delivered = True
        ctx.output(
            CbcDelivery(
                sender=self.sender,
                value=message.value,
                certificate=message.certificate,
            )
        )
