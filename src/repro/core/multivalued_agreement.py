"""Multi-valued Byzantine agreement with external validity (Section 3).

Extends binary agreement to values from arbitrary domains.  The paper's
key innovation here is the *external validity* condition: a global
predicate, checkable by every honest party, determines which values are
acceptable, and the protocol may only decide a value satisfying it —
ruling out agreement on values no (honest) party legitimately proposed.

Structure (following the companion paper [7], CKPS):

1. every party *consistent-broadcasts* its proposal; receivers sign
   only proposals satisfying the predicate, so a commit certificate
   exists only for externally valid values;
2. once a quorum of proposal broadcasts completed locally, the parties
   jointly flip a threshold coin to derive a random candidate
   permutation (defeating adaptive candidate-targeting);
3. candidates are examined in that order: one binary agreement per
   candidate asks "did this proposal commit?"; parties vote 1 iff they
   hold the candidate's commit certificate;
4. the first candidate whose agreement decides 1 wins; parties holding
   its value re-broadcast it with the certificate so everyone can
   output it (binary validity guarantees at least one honest holder).

Expected number of binary agreements is constant; a wrap-around pass
bounds the worst case (by then every honest sender's broadcast has
completed everywhere, so the first honest candidate decides 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from ..crypto.coin import CoinShare
from .binary_agreement import BinaryAgreement
from .consistent_broadcast import CbcDelivery, ConsistentBroadcast, cbc_session
from .protocol import Context, Protocol, SessionId

__all__ = ["MvbaPermShare", "MvbaValue", "MvbaDecision", "MultiValuedAgreement",
           "mvba_session"]

_MAX_PASSES = 3


@dataclass(frozen=True)
class MvbaPermShare:
    """A share of the candidate-permutation coin."""

    share: CoinShare


@dataclass(frozen=True)
class MvbaValue:
    """A committed proposal forwarded after its agreement decided 1."""

    candidate: int
    delivery: CbcDelivery


@dataclass(frozen=True)
class MvbaDecision:
    """The agreement's output: the winning proposer and its value."""

    proposer: int
    value: Hashable


def mvba_session(tag: object) -> SessionId:
    return ("mvba", tag)


class MultiValuedAgreement(Protocol):
    """One instance per tag; outputs an :class:`MvbaDecision`."""

    def __init__(
        self,
        proposal: Hashable,
        predicate: Callable[[Hashable], bool] | None = None,
    ) -> None:
        self.proposal = proposal
        self.predicate = predicate
        self.deliveries: dict[int, CbcDelivery] = {}
        self.perm_shares: dict[int, CoinShare] = {}
        self.perm_pending: dict[int, CoinShare] = {}
        self.perm_bad: set[int] = set()
        self.perm_released = False
        self.permutation: list[int] | None = None
        self.cursor = 0  # index into the (wrapped) candidate sequence
        self.current_vote_session: SessionId | None = None
        self.decided = False

    # -- setup: proposal dissemination ----------------------------------------

    def on_start(self, ctx: Context) -> None:
        for sender in range(ctx.n):
            value = self.proposal if sender == ctx.party else None
            ctx.spawn(
                cbc_session(sender, ctx.session),
                ConsistentBroadcast(sender, value=value, validate=self.predicate),
                on_output=lambda d, s=sender: self._on_delivery(ctx, s, d),
            )

    def refresh_validation(self, ctx: Context) -> None:
        """Re-run the proposal broadcasts' pending validations.

        The external predicate may be *temporarily* false — atomic
        broadcast's availability condition fails until a referenced
        batch arrives — so the spawning layer calls this when new
        context (a fetched batch) could flip it to true.
        """
        if self.decided:
            return
        for sender in range(ctx.n):
            session = cbc_session(sender, ctx.session)
            inst = ctx.instance(session)
            if isinstance(inst, ConsistentBroadcast):
                inst.retry_pending(ctx.at(session))

    def _on_delivery(self, ctx: Context, sender: int, delivery: CbcDelivery) -> None:
        if self.decided:
            return
        self.deliveries[sender] = delivery
        self._maybe_release_permutation(ctx)

    def _maybe_release_permutation(self, ctx: Context) -> None:
        if self.perm_released or not ctx.quorum.is_quorum(self.deliveries):
            return
        self.perm_released = True
        share = ctx.keys.coin.share_for(self._perm_coin_name(ctx), ctx.rng)
        ctx.broadcast(MvbaPermShare(share))

    def _perm_coin_name(self, ctx: Context) -> tuple:
        return ("mvba-perm", ctx.session)

    # -- messages -----------------------------------------------------------------

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        if self.decided:
            return
        if isinstance(message, MvbaPermShare):
            self._on_perm_share(ctx, sender, message.share)
        elif isinstance(message, MvbaValue):
            self._on_value(ctx, sender, message)

    def _on_perm_share(self, ctx: Context, sender: int, share: CoinShare) -> None:
        """Stash the share; batch-verify once the set could open the coin."""
        if self.permutation is not None or sender in self.perm_bad:
            return
        if sender in self.perm_shares or sender in self.perm_pending:
            return
        if not isinstance(share, CoinShare) or share.party != sender:
            return
        name = self._perm_coin_name(ctx)
        if share.name != name:
            return
        self.perm_pending[sender] = share
        candidates = set(self.perm_shares) | set(self.perm_pending)
        if not ctx.public.access_scheme.is_qualified(candidates):
            return
        valid = ctx.public.coin.verify_shares(name, self.perm_pending.values())
        for party in self.perm_pending:
            if party not in valid:
                self.perm_bad.add(party)
        self.perm_shares.update(valid)
        self.perm_pending.clear()
        if ctx.public.access_scheme.is_qualified(set(self.perm_shares)):
            bits = ctx.public.coin.combine_many_bits(
                name, self.perm_shares, bits=63
            )
            self.permutation = self._permutation_from_bits(ctx.n, bits)
            self._start_next_vote(ctx)

    @staticmethod
    def _permutation_from_bits(n: int, bits: int) -> list[int]:
        """A Fisher-Yates shuffle driven by the coin bits (common to all)."""
        order = list(range(n))
        state = bits
        for i in range(n - 1, 0, -1):
            state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            j = state % (i + 1)
            order[i], order[j] = order[j], order[i]
        return order

    # -- the candidate loop -----------------------------------------------------

    def _candidate(self, cursor: int) -> int:
        assert self.permutation is not None
        return self.permutation[cursor % len(self.permutation)]

    def _start_next_vote(self, ctx: Context) -> None:
        if self.decided or self.permutation is None:
            return
        if self.cursor >= _MAX_PASSES * len(self.permutation):
            raise RuntimeError(
                "MVBA exhausted its candidate passes; this is unreachable "
                "when the corruption respects the adversary structure"
            )
        cursor = self.cursor
        candidate = self._candidate(cursor)
        vote = 1 if candidate in self.deliveries else 0
        session: SessionId = ("aba", (ctx.session, cursor))
        self.current_vote_session = session
        ctx.spawn(
            session,
            BinaryAgreement(vote),
            on_output=lambda bit, cur=cursor: self._on_vote_decided(ctx, cur, bit),
        )

    def _on_vote_decided(self, ctx: Context, cursor: int, bit: object) -> None:
        if self.decided or cursor != self.cursor:
            return
        candidate = self._candidate(cursor)
        if bit == 1:
            # Whoever holds the committed value re-broadcasts it; binary
            # validity guarantees at least one honest holder exists.
            delivery = self.deliveries.get(candidate)
            if delivery is not None:
                ctx.broadcast(MvbaValue(candidate, delivery))
            # Decision completes in _on_value (possibly via our own echo).
        else:
            self.cursor += 1
            self._start_next_vote(ctx)

    def _on_value(self, ctx: Context, sender: int, message: MvbaValue) -> None:
        from .consistent_broadcast import verify_commit_certificate

        candidate = message.candidate
        delivery = message.delivery
        if not isinstance(delivery, CbcDelivery) or delivery.sender != candidate:
            return
        session = cbc_session(candidate, ctx.session)
        if not verify_commit_certificate(
            ctx.public, session, delivery.value, delivery.certificate
        ):
            return
        self.deliveries.setdefault(candidate, delivery)
        # Accept the value as the decision only if its agreement decided 1.
        vote_result = None
        if self.permutation is not None:
            vote_session: SessionId = ("aba", (ctx.session, self.cursor))
            if self._candidate(self.cursor) == candidate:
                vote_result = ctx.result(vote_session)
        if vote_result == 1:
            self.decided = True
            ctx.output(MvbaDecision(proposer=candidate, value=delivery.value))
