"""Secure causal atomic broadcast (Section 3, after Reiter-Birman [33]).

Atomic broadcast plus *input causality*: client requests stay
confidential until the moment their position in the total order is
fixed.  Clients encrypt requests under the service's TDH2 public key;
the ciphertext is atomically broadcast; only once a ciphertext is
a-delivered do the servers release decryption shares, combine them,
and s-deliver the plaintext — in exactly the a-delivery order.

CCA2 security of the threshold cryptosystem is essential (Section 5.2):
a corrupted server that observes a pending ciphertext can neither
decrypt it alone nor maul it into a *related* request that the service
might schedule first.  Experiment E7 mounts precisely that front-running
attack against the notary and shows it fails here while succeeding
against plain (unencrypted) atomic broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..crypto.hashing import hash_bytes
from ..crypto.threshold_enc import Ciphertext, DecryptionShare
from .atomic_broadcast import AtomicBroadcast
from .protocol import Context, Protocol, SessionId

__all__ = ["ScDecryptionShare", "SecureCausalBroadcast", "sc_abc_session"]


@dataclass(frozen=True)
class ScDecryptionShare:
    """A decryption share for the a-delivered ciphertext with ``digest``."""

    digest: bytes
    share: DecryptionShare


def sc_abc_session(tag: object = 0) -> SessionId:
    return ("sc-abc", tag)


def _digest(ct: Ciphertext) -> bytes:
    return hash_bytes("sc-abc-ct", ct.payload, ct.label, ct.u, ct.u_bar, ct.e, ct.f)


class SecureCausalBroadcast(Protocol):
    """Wraps an :class:`AtomicBroadcast` with threshold decryption.

    ``on_deliver(plaintext, round)`` fires in identical order at every
    honest party; plaintexts of later a-delivered ciphertexts are never
    released before earlier ones (the pending queue is drained in
    order).
    """

    def __init__(
        self, on_deliver: Callable[[bytes, int], None] | None = None
    ) -> None:
        self.on_deliver = on_deliver
        self.abc = AtomicBroadcast(on_deliver=None)  # wired in on_start
        # Ciphertexts in a-delivery order, awaiting decryption.
        self.pending: list[tuple[bytes, Ciphertext, int]] = []
        self.plaintexts: dict[bytes, bytes] = {}
        # Unverified shares per digest; verification is batched once the
        # set could decrypt (one multi-exp per ciphertext, culprits
        # pinpointed and banned on batch failure).
        self.shares: dict[bytes, dict[int, DecryptionShare]] = {}
        self.verified: dict[bytes, dict[int, DecryptionShare]] = {}
        self.bad: dict[bytes, set[int]] = {}
        self.shared: set[bytes] = set()
        self.s_delivered: list[tuple[bytes, int]] = []

    def on_start(self, ctx: Context) -> None:
        # The inner atomic broadcast runs inside this same session: this
        # instance demultiplexes decryption shares from ABC traffic, so
        # the stack figure's layering stays explicit without a second
        # top-level session.
        self.abc.on_deliver = lambda payload, rnd: self._on_a_deliver(ctx, payload, rnd)

    def submit(self, ctx: Context, ciphertext: Ciphertext) -> None:
        """s-broadcast: hand an encrypted request to the service."""
        if not ctx.public.encryption.check_ciphertext(ciphertext):
            return
        self.abc.submit(ctx, ("ct", ciphertext))

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        if isinstance(message, ScDecryptionShare):
            self._on_share(ctx, sender, message)
        else:
            self.abc.on_message(ctx, sender, message)

    # -- a-delivery -> decryption -------------------------------------------------

    def _on_a_deliver(self, ctx: Context, payload: object, round_number: int) -> None:
        if not (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == "ct"
            and isinstance(payload[1], Ciphertext)
        ):
            return  # junk a corrupted party smuggled into the order
        ct = payload[1]
        if not ctx.public.encryption.check_ciphertext(ct):
            return
        digest = _digest(ct)
        self.pending.append((digest, ct, round_number))
        if digest not in self.shared:
            self.shared.add(digest)
            share = ctx.keys.decryption.decryption_share(ct, ctx.rng)
            if share is not None:
                ctx.broadcast(ScDecryptionShare(digest, share))
        self._drain(ctx)

    def _on_share(self, ctx: Context, sender: int, message: ScDecryptionShare) -> None:
        if not isinstance(message.share, DecryptionShare):
            return
        if message.share.party != sender:
            return
        digest = message.digest
        if digest in self.plaintexts or sender in self.bad.get(digest, ()):
            return
        # Keep the share unverified until a qualified set accumulates
        # (and until the ciphertext itself has a-delivered); the whole
        # set is then checked with one batched multi-exp.  Bounded per
        # digest so junk for unknown digests cannot balloon state.
        bucket = self.shares.setdefault(digest, {})
        if sender not in self.verified.get(digest, ()) and len(bucket) < 4 * ctx.n:
            bucket.setdefault(sender, message.share)
        ct = self._ciphertext_for(digest)
        if ct is None:
            return
        self._try_decrypt(ctx, digest, ct)
        self._drain(ctx)

    def _ciphertext_for(self, digest: bytes) -> Ciphertext | None:
        for d, ct, _rnd in self.pending:
            if d == digest:
                return ct
        return None

    def _try_decrypt(self, ctx: Context, digest: bytes, ct: Ciphertext) -> None:
        if digest in self.plaintexts:
            return
        verified = self.verified.setdefault(digest, {})
        unchecked = self.shares.get(digest, {})
        if unchecked:
            if not ctx.public.access_scheme.is_qualified(
                set(verified) | set(unchecked)
            ):
                return
            valid = ctx.public.encryption.verify_shares(ct, unchecked.values())
            bad = self.bad.setdefault(digest, set())
            for party in unchecked:
                if party not in valid:
                    bad.add(party)
            verified.update(valid)
            unchecked.clear()
        if not ctx.public.access_scheme.is_qualified(set(verified)):
            return
        self.plaintexts[digest] = ctx.public.encryption.combine(ct, verified)

    def _drain(self, ctx: Context) -> None:
        """s-deliver decrypted plaintexts strictly in a-delivery order."""
        while self.pending:
            digest, ct, round_number = self.pending[0]
            self._try_decrypt(ctx, digest, ct)
            if digest not in self.plaintexts:
                return
            self.pending.pop(0)
            plaintext = self.plaintexts[digest]
            self.s_delivered.append((plaintext, round_number))
            if self.on_deliver is not None:
                self.on_deliver(plaintext, round_number)
