"""Binary Byzantine agreement in the explicit CKS style ([8]).

This is a second, independently usable implementation of the agreement
primitive, structured exactly as the protocol of Cachin, Kursawe and
Shoup: rounds of *pre-votes* and *main-votes* whose messages carry
explicit, transferable **justifications** built from signature
certificates, plus the threshold coin:

* a round-1 pre-vote is justified by the party's proposal (free);
* a later pre-vote for ``b`` is justified *hard* — by a certificate of
  a quorum of round ``r-1`` pre-vote shares for ``b`` — or *by the
  coin* — a certificate of a quorum of round ``r-1`` abstain main-vote
  shares, together with the coin value;
* a main-vote is ``b`` when a quorum of justified pre-votes agreed on
  ``b`` (justification: the combined pre-vote certificate), and
  ``abstain`` when conflicting justified pre-votes were seen
  (justification: one justified pre-vote for each value);
* a quorum of main-votes for ``b`` decides ``b``; otherwise the round
  closes with the threshold coin and the next round's pre-vote is
  justified as above.

Where CKS combine shares into constant-size threshold signatures, this
implementation uses quorum certificates (signature sets) — CKS note
the protocol is unaffected; the size difference is measured by
benchmark E12/E13.  The default agreement in
:mod:`repro.core.binary_agreement` achieves the same interface with a
value-binding gate instead of per-message justifications (stronger
validity with free round-1 votes, and a natural fit for generalized
quorums); both coexist so the benchmarks can compare them.

Guarantees (tested): agreement, expected-constant-round termination
under any scheduler, and unanimity-validity against crash/silent
corruptions.  Against actively injecting Byzantine parties the decided
value is always *justifiably pre-voted*; see DESIGN.md on the round-1
justification caveat.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.coin import CoinShare
from ..crypto.schnorr import Signature
from ..crypto.threshold_sig import QuorumCertificate
from .protocol import Context, Protocol, SessionId

__all__ = ["CksPreVote", "CksMainVote", "CksCoinShare", "CksDone",
           "CksBinaryAgreement", "cks_session"]

_ROUND_HORIZON = 64

ABSTAIN = "abstain"


@dataclass(frozen=True)
class CksPreVote:
    round: int
    value: int
    justification: object  # None | ("hard", cert) | ("coin", cert)
    share: Signature  # signature share on (prevote, round, value)


@dataclass(frozen=True)
class CksMainVote:
    round: int
    value: object  # 0 | 1 | "abstain"
    justification: object  # ("cert", cert) | ("conflict", prevote0, prevote1)
    share: Signature  # signature share on (mainvote, round, value)


@dataclass(frozen=True)
class CksCoinShare:
    round: int
    share: CoinShare


@dataclass(frozen=True)
class CksDone:
    value: int


def cks_session(tag: object) -> SessionId:
    return ("cks-aba", tag)


def _prevote_statement(session: SessionId, r: int, value: int) -> tuple:
    return ("cks-prevote", session, r, value)


def _mainvote_statement(session: SessionId, r: int, value: object) -> tuple:
    return ("cks-mainvote", session, r, value)


class _Round:
    __slots__ = (
        "prevotes",
        "prevote_sent",
        "mainvotes",
        "mainvote_sent",
        "coin_released",
        "coin_shares",
        "coin_pending",
        "coin_bad",
        "coin_value",
        "closed",
        "prevote_certs",
        "abstain_cert",
    )

    def __init__(self) -> None:
        self.prevotes: dict[int, CksPreVote] = {}
        self.prevote_sent = False
        self.mainvotes: dict[int, CksMainVote] = {}
        self.mainvote_sent = False
        self.coin_released = False
        self.coin_shares: dict[int, CoinShare] = {}
        self.coin_pending: dict[int, CoinShare] = {}
        self.coin_bad: set[int] = set()
        self.coin_value: int | None = None
        self.closed = False
        self.prevote_certs: dict[int, QuorumCertificate] = {}
        self.abstain_cert: QuorumCertificate | None = None


class CksBinaryAgreement(Protocol):
    """One agreement instance; outputs the decided bit."""

    def __init__(self, proposal: int) -> None:
        if proposal not in (0, 1):
            raise ValueError("proposal must be 0 or 1")
        self.proposal = proposal
        self.round = 0
        self.decided: int | None = None
        self.halted = False
        self.done_sent = False
        self.done_from: dict[int, set[int]] = {0: set(), 1: set()}
        self.rounds: dict[int, _Round] = {}

    # -- lifecycle ------------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        self.round = 1
        self._send_prevote(ctx, 1, self.proposal, None)

    def _state(self, r: int) -> _Round:
        state = self.rounds.get(r)
        if state is None:
            state = _Round()
            self.rounds[r] = state
        return state

    # -- sending --------------------------------------------------------------

    def _send_prevote(self, ctx: Context, r: int, value: int, justification) -> None:
        state = self._state(r)
        if state.prevote_sent:
            return
        state.prevote_sent = True
        share = ctx.keys.cert_quorum.sign_share(
            _prevote_statement(ctx.session, r, value), ctx.rng
        )
        ctx.broadcast(CksPreVote(r, value, justification, share))

    def _send_mainvote(self, ctx: Context, r: int, value, justification) -> None:
        state = self._state(r)
        if state.mainvote_sent:
            return
        state.mainvote_sent = True
        share = ctx.keys.cert_quorum.sign_share(
            _mainvote_statement(ctx.session, r, value), ctx.rng
        )
        ctx.broadcast(CksMainVote(r, value, justification, share))

    # -- dispatch ----------------------------------------------------------------

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        if self.halted:
            return
        if isinstance(message, CksDone):
            self._on_done(ctx, sender, message.value)
            return
        r = getattr(message, "round", None)
        if not isinstance(r, int) or not 1 <= r <= self.round + _ROUND_HORIZON:
            return
        if isinstance(message, CksPreVote):
            self._on_prevote(ctx, sender, r, message)
        elif isinstance(message, CksMainVote):
            self._on_mainvote(ctx, sender, r, message)
        elif isinstance(message, CksCoinShare):
            self._on_coin_share(ctx, sender, r, message.share)
        if r == self.round:
            self._progress(ctx, r)

    # -- justification checking ----------------------------------------------------

    def _prevote_justified(self, ctx: Context, r: int, message: CksPreVote) -> bool:
        if message.value not in (0, 1):
            return False
        if r == 1:
            return message.justification is None  # any initial value
        just = message.justification
        if not (isinstance(just, tuple) and len(just) == 2):
            return False
        kind, cert = just
        if kind == "hard":
            statement = _prevote_statement(ctx.session, r - 1, message.value)
            return isinstance(cert, QuorumCertificate) and ctx.public.cert_quorum.verify(
                statement, cert
            )
        if kind == "coin":
            statement = _mainvote_statement(ctx.session, r - 1, ABSTAIN)
            if not (
                isinstance(cert, QuorumCertificate)
                and ctx.public.cert_quorum.verify(statement, cert)
            ):
                return False
            # The coin value itself is checked locally once known.
            prev = self._state(r - 1)
            return prev.coin_value is None or prev.coin_value == message.value
        return False

    def _mainvote_justified(self, ctx: Context, r: int, message: CksMainVote) -> bool:
        just = message.justification
        if message.value in (0, 1):
            if not (isinstance(just, tuple) and len(just) == 2 and just[0] == "cert"):
                return False
            cert = just[1]
            statement = _prevote_statement(ctx.session, r, message.value)
            return isinstance(cert, QuorumCertificate) and ctx.public.cert_quorum.verify(
                statement, cert
            )
        if message.value == ABSTAIN:
            if not (isinstance(just, tuple) and len(just) == 3 and just[0] == "conflict"):
                return False
            zero, one = just[1], just[2]
            if not (isinstance(zero, CksPreVote) and isinstance(one, CksPreVote)):
                return False
            if zero.value != 0 or one.value != 1:
                return False
            if zero.round != r or one.round != r:
                return False
            return self._prevote_justified(ctx, r, zero) and self._prevote_justified(
                ctx, r, one
            )
        return False

    # -- receipt -------------------------------------------------------------------

    def _on_prevote(self, ctx: Context, sender: int, r: int, message: CksPreVote) -> None:
        state = self._state(r)
        if sender in state.prevotes:
            return
        if not self._prevote_justified(ctx, r, message):
            return
        statement = _prevote_statement(ctx.session, r, message.value)
        if not ctx.public.cert_quorum.verify_share(statement, (sender, message.share)):
            return
        state.prevotes[sender] = message

    def _on_mainvote(self, ctx: Context, sender: int, r: int, message: CksMainVote) -> None:
        state = self._state(r)
        if sender in state.mainvotes:
            return
        if not self._mainvote_justified(ctx, r, message):
            return
        statement = _mainvote_statement(ctx.session, r, message.value)
        if not ctx.public.cert_quorum.verify_share(statement, (sender, message.share)):
            return
        state.mainvotes[sender] = message

    def _on_coin_share(self, ctx: Context, sender: int, r: int, share: CoinShare) -> None:
        """Stash the share; batch-verify once the set could open the coin."""
        state = self._state(r)
        if state.coin_value is not None or sender in state.coin_bad:
            return
        if sender in state.coin_shares or sender in state.coin_pending:
            return
        if not isinstance(share, CoinShare) or share.party != sender:
            return
        name = ("cks-coin", ctx.session, r)
        if share.name != name:
            return
        state.coin_pending[sender] = share
        candidates = set(state.coin_shares) | set(state.coin_pending)
        if not ctx.public.access_scheme.is_qualified(candidates):
            return
        valid = ctx.public.coin.verify_shares(name, state.coin_pending.values())
        for party in state.coin_pending:
            if party not in valid:
                state.coin_bad.add(party)
        state.coin_shares.update(valid)
        state.coin_pending.clear()
        if ctx.public.access_scheme.is_qualified(set(state.coin_shares)):
            state.coin_value = ctx.public.coin.combine(name, state.coin_shares)
            ctx.trace.bump("cks.coin_flips")

    # -- round machinery ----------------------------------------------------------

    def _progress(self, ctx: Context, r: int) -> None:
        if r != self.round or self.halted:
            return
        state = self._state(r)
        self._maybe_mainvote(ctx, r, state)
        self._maybe_close(ctx, r, state)

    def _maybe_mainvote(self, ctx: Context, r: int, state: _Round) -> None:
        if state.mainvote_sent or not ctx.quorum.is_quorum(state.prevotes):
            return
        values = {pv.value for pv in state.prevotes.values()}
        if values == {0} or values == {1}:
            value = values.pop()
            statement = _prevote_statement(ctx.session, r, value)
            shares = {
                p: pv.share for p, pv in state.prevotes.items() if pv.value == value
            }
            cert = ctx.public.cert_quorum.combine(statement, shares)
            state.prevote_certs[value] = cert
            self._send_mainvote(ctx, r, value, ("cert", cert))
        else:
            # Pick the witnesses by lowest party id so the conflict
            # justification is a function of the prevote *set*, not of
            # the adversarial arrival order.
            zero = next(state.prevotes[p] for p in sorted(state.prevotes)
                        if state.prevotes[p].value == 0)
            one = next(state.prevotes[p] for p in sorted(state.prevotes)
                       if state.prevotes[p].value == 1)
            self._send_mainvote(ctx, r, ABSTAIN, ("conflict", zero, one))

    def _maybe_close(self, ctx: Context, r: int, state: _Round) -> None:
        if state.closed or not ctx.quorum.is_quorum(state.mainvotes):
            return
        # Every party releases its coin share once the main-vote quorum
        # is in (CKS release the round coin unconditionally).
        if not state.coin_released:
            state.coin_released = True
            coin_share = ctx.keys.coin.share_for(("cks-coin", ctx.session, r), ctx.rng)
            ctx.broadcast(CksCoinShare(r, coin_share))
        # Decide when a full quorum main-voted the same bit.
        for value in (0, 1):
            backers = {
                p for p, mv in state.mainvotes.items() if mv.value == value
            }
            if ctx.quorum.is_quorum(backers):
                state.closed = True
                self._decide(ctx, value)
                self._advance(ctx, r, value, hard=True)
                return
        values = {mv.value for mv in state.mainvotes.values()}
        hard_value = next((v for v in (0, 1) if v in values), None)
        if hard_value is not None:
            state.closed = True
            self._advance(ctx, r, hard_value, hard=True)
            return
        # All abstain: wait for the coin.
        if state.coin_value is None:
            return
        state.closed = True
        statement = _mainvote_statement(ctx.session, r, ABSTAIN)
        shares = {
            p: mv.share for p, mv in state.mainvotes.items() if mv.value == ABSTAIN
        }
        state.abstain_cert = ctx.public.cert_quorum.combine(statement, shares)
        self._advance(ctx, r, state.coin_value, hard=False)

    def _advance(self, ctx: Context, r: int, value: int, hard: bool) -> None:
        if self.halted:
            return
        state = self._state(r)
        if hard:
            cert = state.prevote_certs.get(value)
            if cert is None:
                # Adopt the certificate carried by a main-vote for value,
                # from the lowest-numbered voter for determinism.
                for p in sorted(state.mainvotes):
                    mv = state.mainvotes[p]
                    if mv.value == value:
                        cert = mv.justification[1]
                        break
            justification = ("hard", cert)
        else:
            justification = ("coin", state.abstain_cert)
        self.round = r + 1
        self._send_prevote(ctx, r + 1, value, justification)
        self._progress(ctx, r + 1)

    # -- decision / halting ----------------------------------------------------------

    def _decide(self, ctx: Context, value: int) -> None:
        if self.decided is None:
            self.decided = value
            ctx.output(value)
        if not self.done_sent:
            self.done_sent = True
            ctx.broadcast(CksDone(value))

    def _on_done(self, ctx: Context, sender: int, value: int) -> None:
        if value not in (0, 1):
            return
        self.done_from[value].add(sender)
        supporters = self.done_from[value]
        if ctx.quorum.contains_honest(supporters):
            if self.decided is None:
                self.decided = value
                ctx.output(value)
            if not self.done_sent:
                self.done_sent = True
                ctx.broadcast(CksDone(value))
        if ctx.quorum.is_strong_quorum(supporters):
            self.halted = True
