"""Generalized quorum rules (Section 4.2).

The agreement and broadcast protocols of Section 3 are written in terms
of three thresholds, which Section 4.2 generalizes to an arbitrary Q^3
adversary structure ``A`` with maximal sets ``A*``:

* where a set of ``n - t`` values is required, take all values in
  ``P \\ S`` for some ``S ∈ A*``;
* where ``2t + 1`` values are needed, take ``S ∪ T ∪ {i}`` for disjoint
  ``S, T ∈ A*`` and ``i ∉ S ∪ T``;
* where ``t + 1`` values are needed, take ``S ∪ {i}`` for ``S ∈ A*``
  and ``i ∉ S``.

Protocols do not build these sets explicitly; they test whether the set
of parties heard from so far *contains* one.  The semantic
characterizations used here are equivalent for monotone structures:

* ``is_quorum(R)``          — ``P \\ R`` is corruptible (n-t rule);
* ``is_strong_quorum(R)``   — removing any corruptible set from ``R``
  leaves a non-corruptible set (2t+1 rule: the honest members of ``R``
  are enough to convince everyone);
* ``contains_honest(R)``    — ``R`` is not corruptible (t+1 rule: at
  least one member is guaranteed honest).

Under Q^3 these nest: quorum ⟹ strong quorum ⟹ contains honest, and
any two quorums intersect in a non-corruptible set — the facts the
protocol proofs rely on.

:class:`ThresholdQuorumSystem` implements the classical case with O(1)
checks; :class:`GeneralQuorumSystem` works for any structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .formulas import Formula
from .structures import AdversaryStructure, threshold_structure

__all__ = [
    "QuorumSystem",
    "ThresholdQuorumSystem",
    "GeneralQuorumSystem",
    "quorum_system_for",
    "access_formula_compatible",
]


class QuorumSystem:
    """Interface the broadcast/agreement protocols are written against."""

    n: int

    def can_be_corrupted(self, parties: Iterable[int]) -> bool:
        """True iff the coalition lies in the adversary structure."""
        raise NotImplementedError

    def is_quorum(self, parties: Iterable[int]) -> bool:
        """Generalized ``>= n - t``: everyone outside may be corrupted."""
        raise NotImplementedError

    def is_strong_quorum(self, parties: Iterable[int]) -> bool:
        """Generalized ``>= 2t + 1``: honest members form a non-corruptible set."""
        raise NotImplementedError

    def contains_honest(self, parties: Iterable[int]) -> bool:
        """Generalized ``>= t + 1``: at least one member is honest."""
        raise NotImplementedError

    def sample_quorum(self) -> frozenset[int]:
        """Some quorum (used by clients to pick how many servers to contact)."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ThresholdQuorumSystem(QuorumSystem):
    """The classical ``t``-threshold quorums with constant-time checks."""

    n: int
    t: int

    def __post_init__(self) -> None:
        if not 0 <= self.t < self.n:
            raise ValueError(f"invalid threshold t={self.t} for n={self.n}")

    @property
    def satisfies_q3(self) -> bool:
        return self.n > 3 * self.t

    def can_be_corrupted(self, parties: Iterable[int]) -> bool:
        return len(frozenset(parties)) <= self.t

    def is_quorum(self, parties: Iterable[int]) -> bool:
        return len(frozenset(parties)) >= self.n - self.t

    def is_strong_quorum(self, parties: Iterable[int]) -> bool:
        return len(frozenset(parties)) >= 2 * self.t + 1

    def contains_honest(self, parties: Iterable[int]) -> bool:
        return len(frozenset(parties)) >= self.t + 1

    def sample_quorum(self) -> frozenset[int]:
        return frozenset(range(self.n - self.t))

    def to_structure(self) -> AdversaryStructure:
        return threshold_structure(self.n, self.t)

    def describe(self) -> str:
        return f"threshold(n={self.n}, t={self.t})"


@dataclass(frozen=True)
class GeneralQuorumSystem(QuorumSystem):
    """Quorums for an arbitrary monotone adversary structure."""

    structure: AdversaryStructure

    @property
    def n(self) -> int:  # type: ignore[override]
        return self.structure.n

    @property
    def satisfies_q3(self) -> bool:
        return self.structure.satisfies_q3()

    def can_be_corrupted(self, parties: Iterable[int]) -> bool:
        return self.structure.is_corruptible(parties)

    def is_quorum(self, parties: Iterable[int]) -> bool:
        rest = self.structure.all_parties - frozenset(parties)
        return self.structure.is_corruptible(rest)

    def is_strong_quorum(self, parties: Iterable[int]) -> bool:
        present = frozenset(parties)
        if not present <= self.structure.all_parties:
            return False
        return all(
            not self.structure.is_corruptible(present - corrupt)
            for corrupt in self.structure.maximal_sets
        )

    def contains_honest(self, parties: Iterable[int]) -> bool:
        return not self.structure.is_corruptible(parties)

    def sample_quorum(self) -> frozenset[int]:
        biggest = max(self.structure.maximal_sets, key=len, default=frozenset())
        return self.structure.all_parties - biggest

    def describe(self) -> str:
        return f"general({self.structure.describe()})"


def quorum_system_for(
    n: int, t: int | None = None, structure: AdversaryStructure | None = None
) -> QuorumSystem:
    """Build a quorum system from either a threshold or a structure."""
    if (t is None) == (structure is None):
        raise ValueError("specify exactly one of t or structure")
    if t is not None:
        return ThresholdQuorumSystem(n=n, t=t)
    assert structure is not None
    if structure.n != n:
        raise ValueError("structure size does not match n")
    return GeneralQuorumSystem(structure=structure)


def access_formula_compatible(structure: AdversaryStructure, access: Formula) -> bool:
    """Check that an access formula can serve structure ``A`` for sharing.

    Two conditions (Section 4.2):

    1. *Safety*: no corruptible coalition is qualified — it suffices to
       check the maximal sets of ``A``.
    2. *Liveness*: the complement of every maximal corruptible set is
       qualified, so the honest parties can always reconstruct.

    The formula need not be the exact complement of ``A``: in the
    paper's Example 2, the natural sharing formula is strictly coarser
    than the complement (whose structure would even violate Q^3).
    """
    everyone = structure.all_parties
    for s in structure.maximal_sets:
        if access.evaluate(s):
            return False
        if not access.evaluate(everyone - s):
            return False
    return True
