"""Monotone Boolean formulas over threshold gates (Section 4.2).

The paper represents adversary/access structures by monotone formulas
built from n-ary threshold gates ``Θ_k^n`` (AND and OR being the special
cases ``Θ_n^n`` and ``Θ_1^n``) over variables that stand for parties.

These formulas serve double duty:

* evaluated on a subset of parties they decide qualification
  (access structure) or corruptibility (adversary structure);
* interpreted as a sharing recipe they yield the Benaloh-Leichter
  linear secret sharing scheme (``repro.crypto.lsss``).

Formulas are immutable trees.  Every *leaf occurrence* is a distinct
secret-sharing slot, identified by its path from the root (tuple of
child indices), because one party may appear several times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Formula", "Leaf", "Threshold", "And", "Or", "majority"]


class Formula:
    """Base class for monotone formulas; use :class:`Leaf` / :class:`Threshold`."""

    def evaluate(self, present: frozenset[int]) -> bool:
        raise NotImplementedError

    def parties(self) -> frozenset[int]:
        """All party indices mentioned anywhere in the formula."""
        raise NotImplementedError

    def leaves(self) -> Iterator[tuple[tuple[int, ...], int]]:
        """Yield ``(path, party)`` for every leaf occurrence."""
        raise NotImplementedError

    # Convenience combinators -------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)


@dataclass(frozen=True)
class Leaf(Formula):
    """A variable: true iff the given party is in the evaluated set."""

    party: int

    def evaluate(self, present: frozenset[int]) -> bool:
        return self.party in present

    def parties(self) -> frozenset[int]:
        return frozenset([self.party])

    def leaves(self) -> Iterator[tuple[tuple[int, ...], int]]:
        yield (), self.party


@dataclass(frozen=True)
class Threshold(Formula):
    """``Θ_k^m``: true iff at least ``k`` of the ``m`` children are true."""

    k: int
    children: tuple[Formula, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.children:
            raise ValueError("threshold gate needs at least one child")
        if not 1 <= self.k <= len(self.children):
            raise ValueError(
                f"threshold k={self.k} out of range for {len(self.children)} children"
            )

    def evaluate(self, present: frozenset[int]) -> bool:
        satisfied = 0
        for child in self.children:
            if child.evaluate(present):
                satisfied += 1
                if satisfied >= self.k:
                    return True
        return False

    def parties(self) -> frozenset[int]:
        out: frozenset[int] = frozenset()
        for child in self.children:
            out |= child.parties()
        return out

    def leaves(self) -> Iterator[tuple[tuple[int, ...], int]]:
        for idx, child in enumerate(self.children):
            for path, party in child.leaves():
                yield (idx, *path), party


def And(*children: Formula) -> Threshold:
    """Conjunction: ``Θ_m^m``."""
    return Threshold(k=len(children), children=tuple(children))


def Or(*children: Formula) -> Threshold:
    """Disjunction: ``Θ_1^m``."""
    return Threshold(k=1, children=tuple(children))


def majority(parties: list[int], k: int) -> Threshold:
    """``k``-out-of-``len(parties)`` gate directly over party leaves."""
    return Threshold(k=k, children=tuple(Leaf(p) for p in parties))
