"""Generalized adversary structures (Section 4 of the paper).

Public API:

* :class:`~repro.adversary.structures.AdversaryStructure` and the
  :func:`~repro.adversary.structures.threshold_structure` /
  :func:`~repro.adversary.structures.structure_from_access_formula`
  constructors;
* monotone formulas with threshold gates
  (:mod:`repro.adversary.formulas`);
* the attribute-classification examples of Section 4.3
  (:mod:`repro.adversary.attributes`);
* generalized quorum systems implementing the Section 4.2 substitution
  rules (:mod:`repro.adversary.quorums`).
"""

from .formulas import And, Formula, Leaf, Or, Threshold, majority
from .structures import (
    AdversaryStructure,
    structure_from_access_formula,
    threshold_structure,
)
from .attributes import (
    AttributeAssignment,
    example1_access_formula,
    example1_assignment,
    example1_structure,
    example2_access_formula,
    example2_assignment,
    example2_structure,
)
from .hybrid import HybridQuorumSystem
from .quorums import (
    GeneralQuorumSystem,
    QuorumSystem,
    ThresholdQuorumSystem,
    access_formula_compatible,
    quorum_system_for,
)

__all__ = [
    "And",
    "Formula",
    "Leaf",
    "Or",
    "Threshold",
    "majority",
    "AdversaryStructure",
    "structure_from_access_formula",
    "threshold_structure",
    "AttributeAssignment",
    "example1_access_formula",
    "example1_assignment",
    "example1_structure",
    "example2_access_formula",
    "example2_assignment",
    "example2_structure",
    "HybridQuorumSystem",
    "GeneralQuorumSystem",
    "QuorumSystem",
    "ThresholdQuorumSystem",
    "access_formula_compatible",
    "quorum_system_for",
]
