"""Hybrid failure structures (Section 6, "Hybrid Failure Structures").

The paper: *"Another interesting direction is to treat crash failures
separately from corruptions ... After all, crashes are more likely to
occur than intrusions and they are much easier to handle than Byzantine
corruptions."*  This module implements that continuum (after Garay and
Perry [19]) for the threshold case: the adversary may corrupt up to
``b`` servers *byzantinely* and crash up to ``c`` further servers.

The admissibility condition generalizes ``n > 3t`` to

    n > 3b + 2c

and the quorum rules become (each reduces to the classical rule at
``c = 0``):

* **quorum** (was ``n - t``): wait for ``n - b - c`` parties — everyone
  else may be crashed or Byzantine, so waiting longer can deadlock;
* **strong quorum** (was ``2t + 1``): ``2b + c + 1`` parties — remove
  every possibly-faulty member and a non-corruptible set (``> b``)
  of live honest parties remains;
* **contains honest** (was ``t + 1``): ``b + 1`` parties — at least one
  member is not Byzantine (it may have crashed *after* sending, which
  is exactly as strong a guarantee as the classical rule gives);
* **secrecy** (coin/encryption shares): only Byzantine servers leak
  their shares, so the sharing threshold needs only ``b + 1`` — crashed
  servers keep their secrets.  This is why tolerating crashes is so
  much cheaper, the point of the Section 6 remark.

Because every protocol in :mod:`repro.core` is written against the
:class:`~repro.adversary.quorums.QuorumSystem` interface, the entire
stack runs under hybrid failures without modification — the fact this
module's tests demonstrate (e.g. n=9 with b=1, c=2: three faulty
servers, where the pure Byzantine bound caps at two faults of any
kind; or n=9 with b=0, c=4: four crashed servers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .quorums import QuorumSystem

__all__ = ["HybridQuorumSystem"]


@dataclass(frozen=True)
class HybridQuorumSystem(QuorumSystem):
    """Threshold hybrid quorums: ``b`` Byzantine plus ``c`` crash faults."""

    n: int
    b: int
    c: int

    def __post_init__(self) -> None:
        if self.b < 0 or self.c < 0:
            raise ValueError("fault budgets must be non-negative")
        if self.b + self.c >= self.n:
            raise ValueError("more faults than servers")

    @property
    def satisfies_q3(self) -> bool:
        """The hybrid admissibility condition ``n > 3b + 2c``."""
        return self.n > 3 * self.b + 2 * self.c

    # -- the generalized rules ------------------------------------------

    def can_be_corrupted(self, parties: Iterable[int]) -> bool:
        """Secrecy rule: only Byzantine servers reveal their shares."""
        return len(frozenset(parties)) <= self.b

    def is_quorum(self, parties: Iterable[int]) -> bool:
        return len(frozenset(parties)) >= self.n - self.b - self.c

    def is_strong_quorum(self, parties: Iterable[int]) -> bool:
        return len(frozenset(parties)) >= 2 * self.b + self.c + 1

    def contains_honest(self, parties: Iterable[int]) -> bool:
        return len(frozenset(parties)) >= self.b + 1

    def sample_quorum(self) -> frozenset[int]:
        return frozenset(range(self.n - self.b - self.c))

    # -- fault-injection accounting ----------------------------------------

    def admissible_faults(self, byzantine: Iterable[int], crashed: Iterable[int]) -> bool:
        """Check a concrete fault pattern against the budgets."""
        byz = frozenset(byzantine)
        crash = frozenset(crashed) - byz
        return len(byz) <= self.b and len(crash) <= self.c

    def describe(self) -> str:
        return f"hybrid(n={self.n}, byzantine<={self.b}, crash<={self.c})"
