"""Attribute-based server classification (Section 4.3).

Servers are classified by one or more independent attributes with at
least four values each (operating system, physical location, ...).  The
classification yields generalized adversary structures in which all
servers sharing an attribute value may be corrupted simultaneously —
modeling, e.g., an exploit that affects every Linux host, or the outage
of an entire site.

This module provides:

* :class:`AttributeAssignment` — the classification itself;
* :func:`example1_structure` — the paper's Example 1 (nine servers, one
  attribute with classes a-d; tolerate any two servers or any whole
  class);
* :func:`example2_structure` — Example 2 (sixteen servers, locations x
  operating systems; tolerate one full location and one full OS
  simultaneously);
* the corresponding access *formulas*, which double as the linear
  secret sharing recipes (Benaloh-Leichter).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from .formulas import And, Formula, Leaf, Or, Threshold
from .structures import AdversaryStructure

__all__ = [
    "AttributeAssignment",
    "class_presence_formula",
    "example1_assignment",
    "example1_access_formula",
    "example1_structure",
    "example2_assignment",
    "example2_access_formula",
    "example2_structure",
    "one_attribute_access_formula",
    "two_attribute_access_formula",
]


@dataclass(frozen=True)
class AttributeAssignment:
    """Maps each party to one value per attribute.

    Attributes:
        attributes: attribute name -> (party -> value); every attribute
            must assign a value to every party.
    """

    n: int
    attributes: dict[str, dict[int, str]]

    def __post_init__(self) -> None:
        for name, mapping in self.attributes.items():
            missing = set(range(self.n)) - set(mapping)
            if missing:
                raise ValueError(f"attribute {name!r} misses parties {sorted(missing)}")

    def values(self, attribute: str) -> list[str]:
        """Distinct values of an attribute, in sorted order."""
        return sorted(set(self.attributes[attribute].values()))

    def parties_with(self, attribute: str, value: str) -> frozenset[int]:
        mapping = self.attributes[attribute]
        return frozenset(p for p in range(self.n) if mapping[p] == value)

    def parties_with_all(self, **constraints: str) -> frozenset[int]:
        """Parties matching every ``attribute=value`` constraint."""
        out = frozenset(range(self.n))
        for attribute, value in constraints.items():
            out &= self.parties_with(attribute, value)
        return out


def class_presence_formula(assignment: AttributeAssignment, attribute: str, value: str) -> Formula:
    """The characteristic function χ_c of Section 4.3 as a formula.

    True iff the evaluated set contains at least one party of the class.
    """
    members = sorted(assignment.parties_with(attribute, value))
    if not members:
        raise ValueError(f"no parties with {attribute}={value}")
    return Or(*(Leaf(p) for p in members))


def one_attribute_access_formula(
    assignment: AttributeAssignment,
    attribute: str,
    min_size: int,
    min_classes: int,
) -> Formula:
    """Access formula ``Θ_min_size^n(S) ∧ Θ_min_classes(χ_c1, ..)``.

    Qualified sets must have at least ``min_size`` members covering at
    least ``min_classes`` distinct values of the attribute — the shape
    of Example 1's access structure.
    """
    size_gate = Threshold(
        k=min_size, children=tuple(Leaf(p) for p in range(assignment.n))
    )
    presence = tuple(
        class_presence_formula(assignment, attribute, v)
        for v in assignment.values(attribute)
    )
    class_gate = Threshold(k=min_classes, children=presence)
    return And(size_gate, class_gate)


# ---------------------------------------------------------------------------
# Example 1: nine servers, one attribute with four classes.
# ---------------------------------------------------------------------------

def example1_assignment() -> AttributeAssignment:
    """The classification of Example 1 (parties are 0-indexed here).

    Paper (1-indexed): class(1..4)=a, class(5)=class(6)=b,
    class(7)=class(8)=c, class(9)=d.
    """
    classes = {0: "a", 1: "a", 2: "a", 3: "a", 4: "b", 5: "b", 6: "c", 7: "c", 8: "d"}
    return AttributeAssignment(n=9, attributes={"class": classes})


def example1_access_formula() -> Formula:
    """Access structure of Example 1: |S| >= 3 and S covers >= 2 classes."""
    return one_attribute_access_formula(
        example1_assignment(), "class", min_size=3, min_classes=2
    )


def example1_structure() -> AdversaryStructure:
    """Adversary structure A1 built analytically.

    A1* consists of {1,..,4} (all of class a) and every pair of servers
    that are not both of class a.
    """
    assignment = example1_assignment()
    class_a = assignment.parties_with("class", "a")
    maximal = [class_a]
    for pair in combinations(range(9), 2):
        if not frozenset(pair) <= class_a:
            maximal.append(frozenset(pair))
    return AdversaryStructure(n=9, maximal_sets=tuple(maximal))


# ---------------------------------------------------------------------------
# Example 2: sixteen servers, two independent attributes (location x OS).
# ---------------------------------------------------------------------------

LOCATIONS = ("newyork", "tokyo", "zurich", "haifa")
OPERATING_SYSTEMS = ("aix", "nt", "linux", "solaris")


def example2_assignment() -> AttributeAssignment:
    """Sixteen servers: party ``4*i + j`` is at location i, runs OS j."""
    location = {4 * i + j: LOCATIONS[i] for i in range(4) for j in range(4)}
    osys = {4 * i + j: OPERATING_SYSTEMS[j] for i in range(4) for j in range(4)}
    return AttributeAssignment(n=16, attributes={"location": location, "os": osys})


def two_attribute_access_formula(assignment: AttributeAssignment, attr1: str, attr2: str) -> Formula:
    """Access formula of Example 2: the negation of its ``g``.

    ``Θ_2(x_a,..,x_d) ∧ Θ_2(y_α,..,y_δ)`` where ``x_v`` requires at
    least two distinct ``attr2`` values present among the parties with
    ``attr1 = v`` (and symmetrically for ``y``).
    """
    values1 = assignment.values(attr1)
    values2 = assignment.values(attr2)

    def cell(v1: str, v2: str) -> Formula:
        members = sorted(assignment.parties_with_all(**{attr1: v1, attr2: v2}))
        if not members:
            raise ValueError(f"empty cell {attr1}={v1}, {attr2}={v2}")
        return Or(*(Leaf(p) for p in members))

    x_gates = tuple(
        Threshold(k=2, children=tuple(cell(v1, v2) for v2 in values2))
        for v1 in values1
    )
    y_gates = tuple(
        Threshold(k=2, children=tuple(cell(v1, v2) for v1 in values1))
        for v2 in values2
    )
    return And(Threshold(k=2, children=x_gates), Threshold(k=2, children=y_gates))


def example2_access_formula() -> Formula:
    return two_attribute_access_formula(example2_assignment(), "location", "os")


def example2_structure() -> AdversaryStructure:
    """Adversary structure of Example 2, built analytically.

    The maximal corruptible coalitions are exactly the unions of one
    full location (row) with one full operating system (column): seven
    servers each, sixteen such sets in total.
    """
    assignment = example2_assignment()
    maximal = []
    for loc in LOCATIONS:
        row = assignment.parties_with("location", loc)
        for osys in OPERATING_SYSTEMS:
            column = assignment.parties_with("os", osys)
            maximal.append(row | column)
    return AdversaryStructure(n=16, maximal_sets=tuple(maximal))
