"""Adversary and access structures (Section 4.1).

An *adversary structure* ``A`` is a monotone family of subsets of the
party set ``P = {0, .., n-1}`` listing which coalitions the adversary
may corrupt simultaneously.  It is represented here by its maximal sets
``A*``.  Its complement, the *access structure*, holds the qualified
sets (those guaranteed to contain enough honest parties, used e.g. for
secret reconstruction).

The key admissibility condition for asynchronous Byzantine protocols is
``Q^3`` [21]: no three sets of ``A`` together cover ``P`` (the threshold
condition ``n > 3t`` is the special case).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

from .formulas import Formula

__all__ = ["AdversaryStructure", "threshold_structure", "structure_from_access_formula"]

PartySet = frozenset[int]


def _maximal_only(sets: Iterable[PartySet]) -> tuple[PartySet, ...]:
    """Drop every set contained in another one; deterministic order.

    Same-size distinct sets can never contain one another, so each set
    is compared only against the strictly larger ones — this keeps the
    filter linear for the (common) uniform-size structures such as
    thresholds, where the naive quadratic scan over binom(n, t) sets
    would dominate everything.
    """
    unique = sorted(set(sets), key=lambda s: (-len(s), sorted(s)))
    maximal: list[PartySet] = []
    larger: list[PartySet] = []  # strictly larger than the current size
    current_size: int | None = None
    for candidate in unique:
        if current_size is None or len(candidate) < current_size:
            larger = list(maximal)
            current_size = len(candidate)
        if not any(candidate <= kept for kept in larger):
            maximal.append(candidate)
    return tuple(sorted(maximal, key=lambda s: (len(s), sorted(s))))


@dataclass(frozen=True)
class AdversaryStructure:
    """A monotone adversary structure given by its maximal sets ``A*``.

    Attributes:
        n: number of parties; the party set is ``{0, .., n-1}``.
        maximal_sets: the maximal corruptible coalitions (antichain).
        threshold: set when the structure is exactly "all ``t``-subsets"
            (built by :func:`threshold_structure`); enables O(1)
            membership and admissibility checks, which matters because
            ``A*`` has :math:`\\binom{n}{t}` sets in that case.
    """

    n: int
    maximal_sets: tuple[PartySet, ...]
    threshold: int | None = None

    def __post_init__(self) -> None:
        parties = self.all_parties
        for s in self.maximal_sets:
            if not s <= parties:
                raise ValueError(f"corruptible set {sorted(s)} outside party set")
        object.__setattr__(self, "maximal_sets", _maximal_only(self.maximal_sets))

    @property
    def all_parties(self) -> PartySet:
        return frozenset(range(self.n))

    # -- membership ------------------------------------------------------

    def is_corruptible(self, parties: Iterable[int]) -> bool:
        """True iff the coalition is in ``A`` (subset of some maximal set)."""
        s = frozenset(parties)
        if self.threshold is not None:
            return len(s) <= self.threshold and s <= self.all_parties
        return any(s <= m for m in self.maximal_sets)

    def is_qualified(self, parties: Iterable[int]) -> bool:
        """True iff the set is in the access structure (not corruptible).

        Qualified sets are those that cannot consist entirely of
        corrupted parties, hence always contain at least one honest one.
        """
        return not self.is_corruptible(parties)

    # -- admissibility ---------------------------------------------------

    def satisfies_q3(self) -> bool:
        """The ``Q^3`` condition: no three sets in ``A`` cover ``P``.

        It suffices to check pairs of maximal sets and ask whether the
        remainder is corruptible (monotonicity covers the general case).
        Threshold structures use the analytic ``n > 3t``; for general
        ones a size argument prunes the quadratic pair scan: if even the
        two largest sets leave more than the largest corruptible size
        uncovered, no triple can cover ``P``.
        """
        if self.threshold is not None:
            return self.n > 3 * self.threshold
        everyone = self.all_parties
        sets = self.maximal_sets
        biggest = self.max_corruptible_size()
        sizes = sorted((len(s) for s in sets), reverse=True)
        if sum(sizes[:2]) < self.n - biggest:
            return True
        for a in sets:
            for b in sets:
                if len(a) + len(b) < self.n - biggest:
                    continue
                if self.is_corruptible(everyone - (a | b)):
                    return False
        return True

    def satisfies_q2(self) -> bool:
        """The weaker ``Q^2`` condition: no two sets in ``A`` cover ``P``."""
        if self.threshold is not None:
            return self.n > 2 * self.threshold
        everyone = self.all_parties
        return not any(
            (a | b) == everyone for a in self.maximal_sets for b in self.maximal_sets
        )

    # -- derived data ------------------------------------------------------

    def minimal_qualified_sets(self) -> tuple[PartySet, ...]:
        """Minimal sets of the access structure.

        A set is minimally qualified iff it is qualified and removing any
        single element makes it corruptible.  Computed by expanding each
        maximal corruptible set's complement structure; for the moderate
        ``n`` of this architecture a direct search over candidate sizes
        is adequate and exact.
        """
        minimal: list[PartySet] = []
        everyone = sorted(self.all_parties)
        # Candidates: for each maximal adversary set M and party i not in M,
        # subsets of the form (subset hitting every maximal set).  We use the
        # hitting-set characterization: S is qualified iff S is not inside
        # any maximal adversary set.  Minimal qualified sets are minimal
        # transversals of the complements.  Search by increasing size.
        from itertools import combinations as _comb

        found_size = None
        for size in range(1, self.n + 1):
            if found_size is not None and size > found_size and minimal:
                # minimal sets can have different sizes; keep scanning but
                # prune supersets of already-found minimal sets.
                pass
            for cand in _comb(everyone, size):
                s = frozenset(cand)
                if any(m <= s for m in minimal):
                    continue
                if self.is_qualified(s):
                    minimal.append(s)
                    found_size = found_size or size
        return tuple(sorted(minimal, key=lambda s: (len(s), sorted(s))))

    def max_corruptible_size(self) -> int:
        """Cardinality of the largest corruptible coalition."""
        return max((len(s) for s in self.maximal_sets), default=0)

    def describe(self) -> str:
        sets = ", ".join("{" + ",".join(map(str, sorted(s))) + "}" for s in self.maximal_sets)
        return f"AdversaryStructure(n={self.n}, A*=[{sets}])"


def threshold_structure(n: int, t: int) -> AdversaryStructure:
    """The classical threshold structure: ``A* = all t-subsets of P``."""
    if not 0 <= t < n:
        raise ValueError(f"invalid threshold t={t} for n={n}")
    maximal = tuple(frozenset(c) for c in combinations(range(n), t))
    if t == 0:
        maximal = (frozenset(),)
    return AdversaryStructure(n=n, maximal_sets=maximal, threshold=t)


def structure_from_access_formula(n: int, access: Formula) -> AdversaryStructure:
    """Build the adversary structure complementary to an access formula.

    ``access`` decides qualification; the adversary structure contains
    exactly the non-qualified sets.  Maximal corruptible sets are found
    by exhaustive search, which is exact and fast for the system sizes
    of Section 4 (n = 9 and n = 16 in the paper's examples).
    """
    if n > 20:
        raise ValueError("exhaustive structure extraction limited to n <= 20")
    parties = list(range(n))
    maximal: list[frozenset[int]] = []
    for mask in range(1 << n):
        s = frozenset(p for p in parties if mask >> p & 1)
        if access.evaluate(s):
            continue
        # Local maximality: adding any absent party must make the set
        # qualified; this avoids the quadratic antichain filter.
        if all(access.evaluate(s | {p}) for p in parties if p not in s):
            maximal.append(s)
    return AdversaryStructure(n=n, maximal_sets=tuple(maximal))
