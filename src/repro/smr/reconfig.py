"""Epoch-based online reconfiguration (membership change without downtime).

A membership change is itself an *ordered operation*: a current member
signs a ``Reconfigure`` request and a client submits it through the
same atomic broadcast as any write, so every honest replica decides the
change at the same point of the total order.  On commit, the cluster
runs the verifiable resharing of :mod:`repro.crypto.dkg` to the new
membership and switches to a new **epoch**:

* the service session becomes epoch-tagged — every protocol message
  carries the epoch in its session id, so cross-epoch shares are
  refused by construction (they land in a different session, under
  different keys);
* the old session is replaced by an :class:`EpochTombstone` that
  answers any late submission with :class:`EpochError` plus a signed
  :class:`MembershipInfo`, which is how a stale client (or a replica
  restarting from an old checkpoint) discovers the new configuration
  without trusting any single replica;
* the departed replica's shares become useless (the resharing
  re-randomizes every verification value), and the joining replica
  state-transfers through the ordinary Section-6 recovery protocol on
  the *new* session.

Epoch numbering starts at 0 (the session id stays the classic
``("service", tag)`` so dealer-era deployments are untouched) and each
committed ``Reconfigure`` opens epoch+1.

This module holds the pure, host-independent pieces: the operation
format and its validation, session naming, the membership statement
clients verify, and the tombstone protocol.  The orchestration — when
to reshare, swapping runtime keys, persisting the new keystore — lives
in :class:`repro.net.runtime.ReplicaHost`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from ..core.protocol import Context, Protocol, SessionId
from ..crypto.dealer import PublicKeys
from ..crypto.schnorr import Signature, SigningKey
from .state_machine import Request

__all__ = [
    "RECONFIG_KIND",
    "ACTIONS",
    "EpochError",
    "MembershipQuery",
    "MembershipInfo",
    "ReconfigureRequest",
    "EpochTombstone",
    "epoch_service_session",
    "membership_statement",
    "signed_membership_info",
    "verify_membership_info",
    "reconfigure_operation",
    "parse_reconfigure",
    "validate_reconfigure",
    "new_member_count",
]

RECONFIG_KIND = "reconfig"

# add: admit a new replica with the next free id (membership stays a
#      contiguous range, which every quorum construction here assumes);
# remove: retire the highest id;
# refresh: keep the membership but reshare anyway — a proactive epoch,
#      and the chaos engine's way of exercising the boundary.
ACTIONS = ("add", "remove", "refresh")


# ===========================================================================
# Wire messages
# ===========================================================================


@dataclass(frozen=True)
class EpochError:
    """This session's epoch is closed; ask for the new membership."""

    replica: int
    epoch: int


@dataclass(frozen=True)
class MembershipQuery:
    """Client request for the current (signed) membership record."""

    # dataclasses need a field for the codec's field-count check; the
    # epoch the asker believes in doubles as light diagnostics.
    known_epoch: int


@dataclass(frozen=True)
class MembershipInfo:
    """One replica's signed statement of the current configuration.

    ``public_json`` is the canonical keystore serialization of the
    epoch's :class:`PublicKeys`.  A client believes a configuration
    once an honest-containing set of replicas — verified against the
    verify keys it *already trusts* — signed the same statement; since
    continuing members keep their identity keys across epochs, this
    chains trust from any past epoch to the present one.
    """

    replica: int
    epoch: int
    public_json: str
    signature: Signature


# ===========================================================================
# Sessions and statements
# ===========================================================================


def epoch_service_session(epoch: int, tag: object = "service") -> SessionId:
    """The service session of an epoch (epoch 0 keeps the legacy id)."""
    if epoch <= 0:
        return ("service", tag)
    return ("service", tag, epoch)


def canonical_public_json(public_dict: dict) -> str:
    """Deterministic serialization — every replica must sign the same
    bytes for the same configuration."""
    return json.dumps(public_dict, sort_keys=True, separators=(",", ":"))


def membership_statement(epoch: int, public_json: str) -> tuple:
    return ("membership", epoch, public_json)


def signed_membership_info(
    replica: int,
    epoch: int,
    public_dict: dict,
    signing_key: SigningKey,
    rng: random.Random,
) -> MembershipInfo:
    public_json = canonical_public_json(public_dict)
    return MembershipInfo(
        replica=replica,
        epoch=epoch,
        public_json=public_json,
        signature=signing_key.sign(membership_statement(epoch, public_json), rng),
    )


def verify_membership_info(info: object, trusted: PublicKeys) -> bool:
    """Check one replica's membership signature against keys the
    verifier already trusts (its current epoch's verify keys)."""
    if not isinstance(info, MembershipInfo):
        return False
    if not (
        isinstance(info.replica, int)
        and isinstance(info.epoch, int)
        and isinstance(info.public_json, str)
        and isinstance(info.signature, Signature)
    ):
        return False
    key = trusted.verify_keys.get(info.replica)
    if key is None:
        return False
    return key.verify(
        membership_statement(info.epoch, info.public_json), info.signature
    )


# ===========================================================================
# The Reconfigure operation
# ===========================================================================


@dataclass(frozen=True)
class ReconfigureRequest:
    """A parsed, structurally sound ``Reconfigure`` operation."""

    action: str
    party: int  # joining/leaving replica id (-1 for refresh)
    verify_key: int  # joiner's identity key (0 unless adding)
    host: str  # joiner's listen address ("" unless adding)
    port: int
    epoch: int  # the epoch this operation opens
    signer: int  # the current member vouching for the change


def _reconfigure_statement(
    action: str, party: int, verify_key: int, host: str, port: int, epoch: int
) -> tuple:
    return ("reconfig-op", action, party, verify_key, host, port, epoch)


def reconfigure_operation(
    action: str,
    epoch: int,
    signer: int,
    signing_key: SigningKey,
    rng: random.Random,
    party: int = -1,
    verify_key: int = 0,
    host: str = "",
    port: int = 0,
) -> tuple:
    """Build the signed flat-tuple operation a client submits."""
    if action not in ACTIONS:
        raise ValueError(f"unknown reconfigure action {action!r}")
    signature = signing_key.sign(
        _reconfigure_statement(action, party, verify_key, host, port, epoch), rng
    )
    return (
        RECONFIG_KIND,
        action,
        party,
        verify_key,
        host,
        port,
        epoch,
        signer,
        signature.commit,
        signature.response,
    )


def parse_reconfigure(operation: object) -> tuple[ReconfigureRequest, Signature] | None:
    """Structural parse; ``None`` for anything that is not a well-formed
    reconfigure operation (then it is just an application op)."""
    if not (isinstance(operation, tuple) and len(operation) == 10):
        return None
    kind, action, party, verify_key, host, port, epoch, signer, commit, response = (
        operation
    )
    if kind != RECONFIG_KIND:
        return None
    if not (
        isinstance(action, str)
        and isinstance(party, int)
        and isinstance(verify_key, int)
        and isinstance(host, str)
        and isinstance(port, int)
        and isinstance(epoch, int)
        and isinstance(signer, int)
        and isinstance(commit, int)
        and isinstance(response, int)
    ):
        return None
    request = ReconfigureRequest(
        action=action,
        party=party,
        verify_key=verify_key,
        host=host,
        port=port,
        epoch=epoch,
        signer=signer,
    )
    return request, Signature(commit=commit, response=response)


def validate_reconfigure(
    operation: object, public: PublicKeys, current_epoch: int
) -> ReconfigureRequest | None:
    """Full validation against the current configuration.

    Runs identically at every replica when the operation is *executed*
    (post-ordering), so accept/reject is part of the agreed history.
    """
    parsed = parse_reconfigure(operation)
    if parsed is None:
        return None
    request, signature = parsed
    if request.action not in ACTIONS:
        return None
    if request.epoch != current_epoch + 1:
        return None
    key = public.verify_keys.get(request.signer)
    if key is None or not key.verify(
        _reconfigure_statement(
            request.action,
            request.party,
            request.verify_key,
            request.host,
            request.port,
            request.epoch,
        ),
        signature,
    ):
        return None
    if request.action == "add":
        if request.party != public.n:
            return None  # membership stays the contiguous range 0..n
        if not public.group.is_member(request.verify_key):
            return None
        if not request.host or not 0 < request.port < 65536:
            return None
    elif request.action == "remove":
        if request.party != public.n - 1:
            return None
        tolerance = getattr(public.quorum, "t", None)
        if tolerance is not None and public.n - 1 < 3 * tolerance + 1:
            return None  # would break the quorum assumptions
    else:  # refresh
        if request.party != -1 or request.verify_key != 0:
            return None
        if request.host != "" or request.port != 0:
            return None
    return request


def new_member_count(public: PublicKeys, request: ReconfigureRequest) -> int:
    if request.action == "add":
        return public.n + 1
    if request.action == "remove":
        return public.n - 1
    return public.n


# ===========================================================================
# The tombstone left at a closed epoch's session
# ===========================================================================


class EpochTombstone(Protocol):
    """Answers traffic sent to a closed epoch's service session.

    Submissions get an :class:`EpochError` pointing at the current
    epoch; membership queries (and recovery probes from replicas that
    restarted with stale state) get the signed membership record.  The
    tombstone never touches the state machine — the closed epoch is
    read-only history.
    """

    def __init__(self, info: MembershipInfo) -> None:
        self.info = info

    def on_start(self, ctx: Context) -> None:  # pragma: no cover - trivial
        pass

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        from .replica import (
            RecoverQuery,
            SubmitEncrypted,
            SubmitRequest,
            SubmitUnordered,
        )

        if isinstance(
            message, (SubmitRequest, SubmitUnordered, SubmitEncrypted)
        ):
            ctx.send(
                sender, EpochError(replica=ctx.party, epoch=self.info.epoch)
            )
        elif isinstance(message, (MembershipQuery, RecoverQuery)):
            ctx.send(sender, self.info)


def request_client(message: object) -> int | None:
    """The client id a submission claims (diagnostics only; routing
    always answers the authenticated sender)."""
    if not hasattr(message, "request"):
        return None
    try:
        request = Request.decode(message.request)
    except (TypeError, ValueError):
        return None
    return request.client
