"""One-call assembly of a replicated trusted service.

Glues the dealer, the simulated network, the per-server protocol
runtimes, the replicas and any number of clients into a running
deployment — the shape every example, test and benchmark uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..adversary.formulas import Formula
from ..adversary.structures import AdversaryStructure
from ..crypto.dealer import SystemKeys, deal_system
from ..crypto.groups import SchnorrGroup, small_group
from ..net.adversary import CorruptionController
from ..net.scheduler import RandomScheduler, Scheduler
from ..net.simulator import Network
from ..core.atomic_broadcast import AbcConfig
from ..core.runtime import ProtocolRuntime
from .client import ServiceClient
from .replica import Replica, service_session
from .state_machine import StateMachine

__all__ = ["ServiceDeployment", "build_service"]

_CLIENT_BASE = 1000


@dataclass
class ServiceDeployment:
    """A complete running service: servers, replicas, network, clients."""

    keys: SystemKeys
    network: Network
    runtimes: dict[int, ProtocolRuntime]
    replicas: dict[int, Replica]
    controller: CorruptionController
    session_tag: object = "service"
    clients: list[ServiceClient] = field(default_factory=list)
    _client_rng: random.Random = field(default_factory=lambda: random.Random(777))

    @property
    def n(self) -> int:
        return self.keys.public.n

    def new_client(self) -> ServiceClient:
        """Attach a fresh client to the network."""
        client_id = _CLIENT_BASE + len(self.clients)
        client = ServiceClient(
            client_id,
            self.network,
            self.keys.public,
            random.Random(self._client_rng.randrange(1 << 48)),
            session_tag=self.session_tag,
        )
        self.network.attach(client_id, client)
        self.clients.append(client)
        return client

    def run_until_complete(
        self, client: ServiceClient, nonces: list[int], max_steps: int = 400_000
    ) -> dict[int, object]:
        """Drive the network until the client's requests complete."""
        self.network.run(
            max_steps=max_steps,
            until=lambda: all(nonce in client.completed for nonce in nonces),
        )
        return {nonce: client.completed[nonce] for nonce in nonces}

    def honest_replicas(self) -> list[Replica]:
        return [
            self.replicas[p]
            for p in sorted(self.replicas)
            if p not in self.controller.corrupted
        ]


def build_service(
    n: int,
    state_machine_factory: Callable[[], StateMachine],
    t: int | None = None,
    structure: AdversaryStructure | None = None,
    hybrid: tuple[int, int] | None = None,
    access_formula: Formula | None = None,
    causal: bool = False,
    scheduler: Scheduler | None = None,
    seed: int = 0,
    group: SchnorrGroup | None = None,
    signature_backend: str = "certs",
    session_tag: object = "service",
    abc_config: AbcConfig | None = None,
) -> ServiceDeployment:
    """Deal keys, build the network, and start one replica per server.

    The default group is the fast 64-bit test group; pass
    ``repro.crypto.default_group()`` for cryptographically sized keys.
    """
    dealer_rng = random.Random(seed)
    keys = deal_system(
        n,
        dealer_rng,
        t=t,
        structure=structure,
        hybrid=hybrid,
        access_formula=access_formula,
        group=group or small_group(),
        signature_backend=signature_backend,
    )
    network = Network(scheduler or RandomScheduler(), random.Random(seed + 1))
    controller = CorruptionController(keys.public.quorum)
    runtimes: dict[int, ProtocolRuntime] = {}
    replicas: dict[int, Replica] = {}
    for party in range(n):
        runtime = ProtocolRuntime(
            party, network, keys.public, keys.private[party], seed=seed
        )
        network.attach(party, runtime)
        replica = Replica(
            state_machine_factory(), causal=causal, abc_config=abc_config
        )
        runtime.spawn(service_session(session_tag), replica)
        runtimes[party] = runtime
        replicas[party] = replica
    return ServiceDeployment(
        keys=keys,
        network=network,
        runtimes=runtimes,
        replicas=replicas,
        controller=controller,
        session_tag=session_tag,
    )
