"""Service clients (Section 5).

A client knows only the service's *single* public keys (the dealer's
public bundle) — never individual server keys beyond the directory used
to authenticate channels.  It submits a request to more than ``t``
servers (we default to all, the simplest way to also get the fairness
guarantee of atomic broadcast), then collects partial answers until the
repliers with a matching result form an honest-containing set, and
combines their signature shares into one service-signed reply.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass

from ..crypto.dealer import PublicKeys
from ..crypto.threshold_sig import QuorumCertScheme, ShoupRsaScheme
from ..net.base import NetworkBackend
from ..net.simulator import Node
from . import codec
from .reconfig import (
    EpochError,
    MembershipInfo,
    MembershipQuery,
    epoch_service_session,
    verify_membership_info,
)
from .replica import SubmitEncrypted, SubmitRequest, reply_statement
from .state_machine import Reply, Request

__all__ = ["CompletedRequest", "ServiceClient"]


@dataclass(frozen=True)
class CompletedRequest:
    """A finished request: the agreed result plus the service signature."""

    nonce: int
    result: object
    signature: object

    def verify(self, public: PublicKeys, client: int, operation: tuple) -> bool:
        """Re-verify the service's signature on this answer."""
        digest = ("request", client, nonce := self.nonce, operation)
        statement = reply_statement(digest, self.result)
        scheme = public.service_signature
        if isinstance(scheme, (QuorumCertScheme, ShoupRsaScheme)):
            return scheme.verify(statement, self.signature)
        return False


class ServiceClient(Node):
    """A (possibly one of many) client attached to the network."""

    def __init__(
        self,
        client_id: int,
        network: NetworkBackend,
        public: PublicKeys,
        rng: random.Random,
        session_tag: object = "service",
        epoch: int = 0,
    ) -> None:
        self.client_id = client_id
        self.network = network
        self.public = public
        self.rng = rng
        self.session_tag = session_tag
        self.epoch = epoch
        self.session = epoch_service_session(epoch, session_tag)
        self._nonce = 0
        self._operations: dict[int, tuple] = {}
        self._replies: dict[int, dict[int, Reply]] = {}
        self.completed: dict[int, CompletedRequest] = {}
        self.resubmissions = 0
        self.duplicate_replies = 0
        self.epoch_refreshes = 0
        # Signed MembershipInfo votes collected after an EpochError,
        # grouped by the configuration they attest to.
        self._membership_votes: dict[tuple[int, str], set[int]] = {}

    # -- submission --------------------------------------------------------------

    def submit(self, operation: tuple, servers: list[int] | None = None) -> int:
        """Send a plaintext request; returns the nonce to await."""
        nonce = self._next_nonce(operation)
        request = Request(client=self.client_id, nonce=nonce, operation=operation)
        payload = (self.session, SubmitRequest(request.encode()))
        for server in self._targets(servers):
            self.network.send(self.client_id, server, payload)
        return nonce

    def submit_unordered(
        self, operation: tuple, servers: list[int] | None = None
    ) -> int:
        """Send a commuting (read-only) request — no total ordering.

        Section 5: commuting requests only need reliable delivery, so
        replicas answer directly and the round-trip skips the agreement
        machinery entirely.  Completion still requires matching signed
        answers from an honest-containing set; if replicas are mid-write
        and their answers diverge, resubmit via :meth:`submit`.
        """
        from .replica import SubmitUnordered

        nonce = self._next_nonce(operation)
        request = Request(client=self.client_id, nonce=nonce, operation=operation)
        payload = (self.session, SubmitUnordered(request.encode()))
        for server in self._targets(servers):
            self.network.send(self.client_id, server, payload)
        return nonce

    def submit_confidential(
        self, operation: tuple, servers: list[int] | None = None
    ) -> int:
        """Encrypt the request under the service key and submit it.

        The request remains confidential until the secure causal atomic
        broadcast has fixed its position in the total order.
        """
        nonce = self._next_nonce(operation)
        request = Request(client=self.client_id, nonce=nonce, operation=operation)
        plaintext = codec.dumps(request.encode())
        label = codec.dumps(("client", self.client_id, nonce))
        ciphertext = self.public.encryption.encrypt(plaintext, label, self.rng)
        payload = (self.session, SubmitEncrypted(ciphertext))
        for server in self._targets(servers):
            self.network.send(self.client_id, server, payload)
        return nonce

    def resubmit(self, nonce: int, servers: list[int] | None = None) -> bool:
        """Re-send a still-pending ordered request under its *original*
        nonce.

        Safe to call any number of times: replicas deduplicate by
        ``(client, nonce)`` (at-most-once execution), and this client
        ignores replies for nonces already completed, so a resubmission
        can never double-count an operation.  Returns False once the
        request has completed (nothing was sent).
        """
        if nonce in self.completed or nonce not in self._operations:
            return False
        operation = self._operations[nonce]
        request = Request(client=self.client_id, nonce=nonce, operation=operation)
        payload = (self.session, SubmitRequest(request.encode()))
        for server in self._targets(servers):
            self.network.send(self.client_id, server, payload)
        self.resubmissions += 1
        return True

    async def call(
        self,
        operation: tuple,
        *,
        timeout: float = 60.0,
        attempt_timeout: float = 3.0,
        backoff: float = 2.0,
        max_attempt_timeout: float = 15.0,
        servers: list[int] | None = None,
    ) -> CompletedRequest:
        """Submit an ordered request and await its signed answer,
        resubmitting with capped exponential backoff.

        This is the chaos-hardened client loop for the TCP backend (the
        network must provide ``wait_until``, i.e. be a
        :class:`~repro.net.transport.TransportNetwork`): a replica that
        crashes, restarts, or sits behind a partition can swallow the
        first submission, so the request is re-sent — same nonce, so
        replicas execute it at most once — every ``attempt_timeout``
        (growing by ``backoff`` up to ``max_attempt_timeout``) until
        the overall per-op ``timeout`` expires, which raises
        ``asyncio.TimeoutError`` instead of hanging forever.
        """
        nonce = self.submit(operation, servers=servers)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        wait = attempt_timeout
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                # Re-validate completion before declaring failure: the
                # signed answer may have landed during the final
                # suspension (wait_until times out and completion races
                # its TimeoutError), and reporting a completed —
                # possibly state-mutating — operation as timed out
                # would make the caller retry it under a *new* nonce.
                if nonce in self.completed:
                    return self.completed[nonce]
                raise asyncio.TimeoutError(
                    f"operation {operation!r} (nonce {nonce}) did not complete "
                    f"within {timeout}s after {self.resubmissions} resubmission(s)"
                )
            try:
                await self.network.wait_until(
                    lambda: nonce in self.completed,
                    timeout=min(wait, remaining),
                )
                return self.completed[nonce]
            except asyncio.TimeoutError:
                self.resubmit(nonce, servers=servers)
                wait = min(wait * backoff, max_attempt_timeout)

    def operation(self, nonce: int) -> tuple:
        """The operation submitted under ``nonce`` (KeyError if unknown)."""
        return self._operations[nonce]

    def _next_nonce(self, operation: tuple) -> int:
        self._nonce += 1
        self._operations[self._nonce] = operation
        return self._nonce

    def _targets(self, servers: list[int] | None) -> list[int]:
        if servers is not None:
            return servers
        targets = list(range(self.public.n))
        # On an authenticated transport we can only reach replicas we
        # share a channel key with; a joiner admitted after this client
        # was provisioned stays out of the target set (the remaining
        # members still form an honest-containing set).  The simulator
        # backend has no channel keys and is unaffected.
        known = getattr(self.network, "channel_keys", None)
        if known is None:
            return targets
        return [server for server in targets if server in known]

    # -- replies ---------------------------------------------------------------------

    def on_message(self, sender: int, payload: object) -> None:
        if not (isinstance(payload, tuple) and len(payload) == 2):
            return
        session, message = payload
        if session != self.session:
            return
        if isinstance(message, EpochError):
            self._on_epoch_error(sender, message)
            return
        if isinstance(message, MembershipInfo):
            self._on_membership_info(sender, message)
            return
        if not isinstance(message, Reply):
            return
        if message.replica != sender or message.client != self.client_id:
            return
        nonce = message.nonce
        if nonce in self.completed or nonce not in self._operations:
            # Late or repeated answers for a finished request (normal
            # under resubmission) change nothing: dedup, don't recount.
            self.duplicate_replies += 1
            return
        bucket = self._replies.setdefault(nonce, {})
        if sender in bucket:
            self.duplicate_replies += 1
            return
        # Verify the replica's signature share up front; junk shares from
        # corrupted replicas are discarded here.
        statement = self._statement(nonce, message.result)
        if not self._share_valid(statement, sender, message.signature_share):
            return
        bucket[sender] = message
        self._maybe_complete(nonce)

    # -- epoch refresh (online reconfiguration) --------------------------------

    def _on_epoch_error(self, sender: int, message: EpochError) -> None:
        """A replica told us our session's epoch is closed: fetch the
        signed membership record instead of burning the retry budget
        against a configuration that no longer exists."""
        if not isinstance(message.epoch, int) or message.epoch <= self.epoch:
            return
        query = (self.session, MembershipQuery(known_epoch=self.epoch))
        for server in self._targets(None):
            self.network.send(self.client_id, server, query)

    def _on_membership_info(self, sender: int, message: MembershipInfo) -> None:
        """Adopt a newer configuration once an honest-containing set of
        *currently trusted* replicas signed the identical record.

        Continuing members keep their identity keys across epochs, so
        verifying against the current epoch's verify keys chains trust
        from the configuration this client already believes to the new
        one — no single replica (and no departed replica) can feed the
        client a fake membership.
        """
        if message.replica != sender:
            return
        if not verify_membership_info(message, self.public):
            return
        if message.epoch <= self.epoch:
            return
        votes = self._membership_votes.setdefault(
            (message.epoch, message.public_json), set()
        )
        votes.add(sender)
        if not self.public.quorum.contains_honest(frozenset(votes)):
            return
        try:
            from ..crypto import keystore

            public = keystore.public_from_dict(json.loads(message.public_json))
        except (ValueError, KeyError, TypeError):
            return
        self.public = public
        self.epoch = message.epoch
        self.session = epoch_service_session(message.epoch, self.session_tag)
        self.epoch_refreshes += 1
        self._membership_votes.clear()
        # Replies collected under the old configuration mix signature
        # shares from two key generations; drop them and re-send every
        # pending request — same nonce, so execution stays at-most-once
        # even if the old epoch already ordered it.
        self._replies.clear()
        for nonce in sorted(self._operations):
            self.resubmit(nonce)

    def _statement(self, nonce: int, result: object) -> tuple:
        operation = self._operations[nonce]
        digest = ("request", self.client_id, nonce, operation)
        return reply_statement(digest, result)

    def _share_valid(self, statement: tuple, sender: int, share: object) -> bool:
        scheme = self.public.service_signature
        if isinstance(scheme, QuorumCertScheme):
            return scheme.verify_share(statement, (sender, share))
        if isinstance(scheme, ShoupRsaScheme):
            # RSA shareholders are indexed 1..n for 0-based party i.
            return scheme.verify_share(statement, share) and share.party == sender + 1
        return False

    def _maybe_complete(self, nonce: int) -> None:
        """Complete once matching replies form an honest-containing set."""
        by_result: dict[object, dict[int, Reply]] = {}
        for sender in sorted(self._replies[nonce]):
            reply = self._replies[nonce][sender]
            by_result.setdefault(reply.result, {})[sender] = reply
        # Results need not be orderable; examine candidates by their
        # lowest supporting replica id so completion is a function of
        # the reply set, not of arrival order.
        candidates = sorted(by_result.items(), key=lambda kv: min(kv[1]))
        for result, group in candidates:
            if not self.public.quorum.contains_honest(group):
                continue
            statement = self._statement(nonce, result)
            signature = self._combine(statement, group)
            if signature is None:
                continue
            self.completed[nonce] = CompletedRequest(
                nonce=nonce, result=result, signature=signature
            )
            # The share buffer served its purpose; dropping it keeps an
            # open-loop client's memory proportional to the requests in
            # flight rather than its lifetime (late duplicate replies
            # are counted via `completed` instead).
            self._replies.pop(nonce, None)
            return

    def _combine(self, statement: tuple, group: dict[int, Reply]) -> object | None:
        scheme = self.public.service_signature
        try:
            if isinstance(scheme, QuorumCertScheme):
                shares = {s: r.signature_share for s, r in group.items()}
                return scheme.combine(statement, shares)
            if isinstance(scheme, ShoupRsaScheme):
                shares = {s + 1: r.signature_share for s, r in group.items()}
                if len(shares) < scheme.k:
                    return None
                return scheme.combine(statement, shares)
        except (ValueError, ArithmeticError):
            return None
        return None
