"""Secure state machine replication (Section 5)."""

from .client import CompletedRequest, ServiceClient
from .replica import Replica, SubmitEncrypted, SubmitRequest, service_session
from .service import ServiceDeployment, build_service
from .state_machine import KeyValueStore, Reply, Request, StateMachine

__all__ = [
    "CompletedRequest",
    "ServiceClient",
    "Replica",
    "SubmitEncrypted",
    "SubmitRequest",
    "service_session",
    "ServiceDeployment",
    "build_service",
    "KeyValueStore",
    "Reply",
    "Request",
    "StateMachine",
]
