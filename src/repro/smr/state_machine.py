"""Deterministic replicated state machines (Section 5, after [34]).

Trusted applications are deterministic state machines replicated on all
servers and initialized to the same state; atomic broadcast guarantees
every replica applies the same sequence of operations, so honest
replicas stay in lock-step and clients can cross-check their answers.

A :class:`StateMachine` must be *deterministic*: ``apply`` may depend
only on the current state and the request.  Everything nondeterministic
(randomness, signatures) lives in the replica layer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Request", "Reply", "StateMachine", "KeyValueStore"]

# Operations and results are codec-encodable values (see smr.codec):
# nested tuples of None/bool/int/str/bytes.
Operation = tuple
Result = object


@dataclass(frozen=True)
class Request:
    """A client request: globally unique via (client, nonce).

    Attributes:
        client: network id of the submitting client.
        nonce: client-chosen request number (dedup / reply matching).
        operation: the application operation, e.g. ``("register", digest)``.
    """

    client: int
    nonce: int
    operation: Operation

    def encode(self) -> tuple:
        return ("req", self.client, self.nonce, self.operation)

    @staticmethod
    def decode(value: object) -> "Request | None":
        if (
            isinstance(value, tuple)
            and len(value) == 4
            and value[0] == "req"
            and isinstance(value[1], int)
            and isinstance(value[2], int)
            and isinstance(value[3], tuple)
        ):
            return Request(client=value[1], nonce=value[2], operation=value[3])
        return None


@dataclass(frozen=True)
class Reply:
    """One replica's partial answer (Section 5: clients majority-vote).

    ``signature_share`` is the replica's share of the service's
    threshold signature on ``(request digest, result)``; a client
    combines an honest-containing set of matching replies into a single
    service-signed answer.
    """

    replica: int
    client: int
    nonce: int
    result: Result
    signature_share: object


class StateMachine:
    """Interface every trusted application implements."""

    def apply(self, request: Request) -> Result:
        """Execute one operation; must be deterministic."""
        raise NotImplementedError

    def snapshot(self) -> object:
        """A comparable view of the full state (for replica consistency
        checks in tests; not used by the protocols)."""
        raise NotImplementedError

    def is_read_only(self, operation: Operation) -> bool:
        """True iff the operation commutes with everything (never
        mutates state).  Section 5: "If the client requests commute,
        reliable broadcast suffices" — replicas answer read-only
        requests directly from current state, skipping the total order
        (see :meth:`ServiceClient.submit_unordered`).  Default: nothing
        commutes; applications opt individual operations in.
        """
        return False


class KeyValueStore(StateMachine):
    """The minimal useful state machine: a versioned key-value store.

    Used by the quickstart example and as the base for the directory
    service.  Operations: ``("set", key, value)`` and ``("get", key)``.
    """

    def __init__(self) -> None:
        self.data: dict[str, object] = {}
        self.version = 0

    def apply(self, request: Request) -> Result:
        op = request.operation
        if len(op) == 3 and op[0] == "set" and isinstance(op[1], str):
            self.version += 1
            self.data[op[1]] = op[2]
            return ("ok", self.version)
        if len(op) == 2 and op[0] == "get" and isinstance(op[1], str):
            return ("value", self.data.get(op[1]))
        return ("error", "unknown operation")

    def is_read_only(self, operation: Operation) -> bool:
        return bool(operation) and operation[0] == "get"

    def snapshot(self) -> object:
        return (self.version, tuple(sorted(self.data.items())))
