"""Canonical serialization for client requests.

Secure causal broadcast carries *encrypted* requests, so requests must
round-trip through bytes.  This tiny self-describing codec covers the
value shapes requests are built from (None, bool, int, str, bytes and
tuples thereof); it is canonical — equal values encode identically —
which matters because digests of encoded requests are used as identity.
"""

from __future__ import annotations

__all__ = ["dumps", "loads", "CodecError"]


class CodecError(ValueError):
    """Malformed encoding (e.g. crafted by a corrupted party)."""


def dumps(value: object) -> bytes:
    """Encode a request value canonically."""
    out = bytearray()
    _write(out, value)
    return bytes(out)


def loads(data: bytes) -> object:
    """Decode; raises :class:`CodecError` on malformed input."""
    value, offset = _read(data, 0)
    if offset != len(data):
        raise CodecError("trailing bytes")
    return value


def _write(out: bytearray, value: object) -> None:
    if value is None:
        out += b"N"
    elif isinstance(value, bool):  # before int: bool is an int subclass
        out += b"T" if value else b"F"
    elif isinstance(value, int):
        body = str(value).encode("ascii")
        out += b"I" + len(body).to_bytes(4, "big") + body
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out += b"S" + len(body).to_bytes(4, "big") + body
    elif isinstance(value, bytes):
        out += b"B" + len(value).to_bytes(4, "big") + value
    elif isinstance(value, tuple):
        out += b"L" + len(value).to_bytes(4, "big")
        for item in value:
            _write(out, item)
    else:
        raise CodecError(f"cannot encode {type(value).__name__}")


def _read(data: bytes, offset: int) -> tuple[object, int]:
    if offset >= len(data):
        raise CodecError("truncated")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag in (b"I", b"S", b"B", b"L"):
        if offset + 4 > len(data):
            raise CodecError("truncated length")
        length = int.from_bytes(data[offset : offset + 4], "big")
        offset += 4
        if tag == b"L":
            items = []
            for _ in range(length):
                item, offset = _read(data, offset)
                items.append(item)
            return tuple(items), offset
        if offset + length > len(data):
            raise CodecError("truncated body")
        body = data[offset : offset + length]
        offset += length
        if tag == b"I":
            try:
                return int(body.decode("ascii")), offset
            except ValueError as exc:
                raise CodecError("bad integer") from exc
        if tag == b"S":
            try:
                return body.decode("utf-8"), offset
            except UnicodeDecodeError as exc:
                raise CodecError("bad utf-8") from exc
        return bytes(body), offset
    raise CodecError(f"unknown tag {tag!r}")
