"""Service replicas: the gateway between clients and the broadcast stack.

Section 5's request flow, per server:

1. a client sends its request to more than ``t`` servers (otherwise
   corrupted servers could simply ignore it);
2. each server *a-broadcasts* the request — via plain atomic broadcast,
   or secure causal atomic broadcast when requests are confidential
   (the request then arrives as a TDH2 ciphertext and is decrypted only
   after its position in the total order is fixed);
3. on delivery, every replica applies the request to its deterministic
   state machine and returns a partial answer containing its share of
   the service's threshold signature on the result;
4. the client waits for matching answers from an honest-containing set
   and combines the shares into one service-signed reply.

The replica is a protocol instance living at session ``("service", tag)``
inside the server's :class:`~repro.core.runtime.ProtocolRuntime`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.atomic_broadcast import AbcConfig, AtomicBroadcast
from ..core.protocol import Context, Protocol, SessionId
from ..core.secure_causal import SecureCausalBroadcast
from ..crypto.threshold_enc import Ciphertext
from . import codec
from .reconfig import MembershipInfo, MembershipQuery
from .state_machine import Reply, Request, StateMachine

__all__ = ["SubmitRequest", "SubmitEncrypted", "RecoverQuery", "RecoverLog",
           "Replica", "service_session", "reply_statement"]


@dataclass(frozen=True)
class SubmitRequest:
    """Client -> server: an ordinary (non-confidential) request."""

    request: tuple  # Request.encode()


@dataclass(frozen=True)
class SubmitEncrypted:
    """Client -> server: a confidential request (TDH2 ciphertext)."""

    ciphertext: Ciphertext


@dataclass(frozen=True)
class SubmitUnordered:
    """Client -> server: a commuting (read-only) request.

    Section 5: "If the client requests commute, reliable broadcast
    suffices."  The replica answers straight from its current state —
    no atomic broadcast round at all.  The client still cross-checks an
    honest-containing set of matching signed answers, so a stale or
    lying minority changes nothing; if replicas are transiently
    divergent the answers may not match and the client falls back to
    the ordered path.
    """

    request: tuple  # Request.encode()


@dataclass(frozen=True)
class RecoverQuery:
    """A recovering replica asks its peers for the delivered history."""


@dataclass(frozen=True)
class RecoverLog:
    """A peer's answer: its full delivery log and current round.

    The recovering replica accepts a log once an honest-containing set
    of peers reported the identical one (Section 6, crash-recovery):
    replaying it through the deterministic state machine reconstructs
    the exact pre-crash service state.
    """

    entries: tuple  # ((payload, round), ...) in delivery order
    round: int


def service_session(tag: object = "service") -> SessionId:
    return ("service", tag)


def reply_statement(request_digest: object, result: object) -> tuple:
    """What the service's threshold signature covers in a reply."""
    return ("service-reply", request_digest, result)


def _entry_round(item: object) -> int:
    """The round recorded in a log entry; 0 for malformed entries."""
    if isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], int):
        return item[1]
    return 0


class Replica(Protocol):
    """One server's replica of a trusted application."""

    def __init__(
        self,
        state_machine: StateMachine,
        causal: bool = False,
        abc_config: AbcConfig | None = None,
    ) -> None:
        self.state_machine = state_machine
        self.causal = causal
        self.abc = AtomicBroadcast(config=abc_config)
        self.sc_abc = SecureCausalBroadcast()
        self.executed: list[tuple[Request, object]] = []
        self._seen_nonces: set[tuple[int, int]] = set()
        # client -> (nonce, result) of its *latest* executed request, so
        # a duplicate submission can be re-answered instead of silently
        # swallowed by the at-most-once dedup.  Matters across an epoch
        # switch: a request ordered at the boundary may have been
        # answered on a session the client no longer listens on, and the
        # client's same-nonce resubmission must still produce a signed
        # reply.  One entry per client suffices — clients resubmit only
        # their pending, monotonically-nonced request — and keeps memory
        # bounded by the client population, not the request volume.
        self._results: dict[int, tuple[int, object]] = {}
        # Execution pause (epoch reconfiguration): while paused, ordered
        # requests queue here in delivery order instead of executing, so
        # every replica applies them at the same epoch no matter when
        # its own resharing completes.  Each entry remembers whether it
        # arrived during a replay (replies must not be re-sent for
        # those when the queue drains).
        self._paused = False
        self._pending_execution: list[tuple[Request, int, bool]] = []
        self.recovering = False
        self._recovery_logs: dict[int, RecoverLog] = {}
        self._replaying = False
        # Observation hook: called after every executed request (replays
        # included) with the round the request was ordered in — the
        # deployment host uses it for the execution journal the chaos
        # safety checker reads, and for periodic checkpointing.  Never
        # part of the protocol itself.
        self.on_execute: Callable[[Request, object, int], None] | None = None
        # Interception hook: called for every ordered request *before*
        # the application state machine.  Returning a non-None result
        # consumes the request — the replica signs and replies with that
        # result and the state machine never sees the operation.  The
        # deployment host uses it for ``Reconfigure`` operations, which
        # are agreed through the same total order as writes but drive
        # the key/membership layer instead of the application.  The
        # callable receives ``(request, round, replaying)`` so a replay
        # from a checkpoint can acknowledge historic reconfigurations
        # without re-triggering a resharing.
        self.intercept: Callable[[Request, int, bool], object | None] | None = None
        # The host's signed statement of the current configuration
        # (see smr/reconfig.py); answered to MembershipQuery so clients
        # can refresh against the live session too, not only against
        # tombstones of closed epochs.
        self.membership_info: object | None = None
        # Host callback for a *received* MembershipInfo: a RecoverQuery
        # we sent to peers can come back with the signed record of a
        # newer epoch instead of log entries (the peers left our epoch
        # behind while we were down) — the host verifies a quorum of
        # such votes and re-adopts.
        self.on_membership_info: Callable[[int, object], None] | None = None

    # -- lifecycle ------------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        self.abc.on_deliver = lambda payload, rnd: self._on_ordered(ctx, payload, rnd)
        self.abc.on_lag = lambda: self._on_lag(ctx)
        self.sc_abc.on_start(ctx)
        self.sc_abc.on_deliver = lambda plaintext, rnd: self._on_ordered_plain(
            ctx, plaintext, rnd
        )

    # -- message routing ----------------------------------------------------------

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        if isinstance(message, SubmitRequest):
            self._on_submit(ctx, message.request)
        elif isinstance(message, SubmitUnordered):
            self._on_submit_unordered(ctx, message.request)
        elif isinstance(message, SubmitEncrypted):
            if self.causal and isinstance(message.ciphertext, Ciphertext):
                self.sc_abc.submit(ctx, message.ciphertext)
        elif isinstance(message, MembershipQuery):
            if self.membership_info is not None:
                ctx.send(sender, self.membership_info)
        elif isinstance(message, MembershipInfo):
            if self.on_membership_info is not None:
                self.on_membership_info(sender, message)
        elif isinstance(message, RecoverQuery):
            self._on_recover_query(ctx, sender)
        elif isinstance(message, RecoverLog):
            self._on_recover_log(ctx, sender, message)
        elif self.causal:
            self.sc_abc.on_message(ctx, sender, message)
        else:
            self.abc.on_message(ctx, sender, message)

    def _on_submit(self, ctx: Context, encoded: object) -> None:
        request = Request.decode(encoded)
        if request is None:
            return
        if self.causal:
            # A confidential service refuses plaintext submissions: they
            # would break input causality for everyone.
            return
        cached = self._results.get(request.client)
        if cached is not None and cached[0] == request.nonce:
            self._reply(ctx, request, cached[1])
            return
        self.abc.submit(ctx, request.encode())

    def _on_submit_unordered(self, ctx: Context, encoded: object) -> None:
        """Answer a commuting request from current state (no ordering)."""
        request = Request.decode(encoded)
        if request is None or self.causal or self.recovering:
            return
        if not self.state_machine.is_read_only(request.operation):
            return  # mutating requests must take the ordered path
        result = self.state_machine.apply(request)
        digest = ("request", request.client, request.nonce, request.operation)
        share = ctx.keys.service_signer.sign_share(
            reply_statement(digest, result), ctx.rng
        )
        ctx.send(
            request.client,
            Reply(
                replica=ctx.party,
                client=request.client,
                nonce=request.nonce,
                result=result,
                signature_share=share,
            ),
        )

    # -- ordered execution -----------------------------------------------------------

    def _on_ordered(self, ctx: Context, payload: object, rnd: int) -> None:
        request = Request.decode(payload)
        if request is None:
            return  # a corrupted server ordered junk; skip deterministically
        self._execute(ctx, request, rnd)

    def _on_ordered_plain(self, ctx: Context, plaintext: object, rnd: int) -> None:
        if not isinstance(plaintext, bytes):
            return
        try:
            decoded = codec.loads(plaintext)
        except codec.CodecError:
            return
        request = Request.decode(decoded)
        if request is None:
            return
        self._execute(ctx, request, rnd)

    def _on_lag(self, ctx: Context) -> None:
        """An honest-containing set of signers is provably rounds ahead
        of our bounded proposal window: the proposals we missed were
        dropped rather than buffered, so the only way back into the
        round structure is Section 6 state transfer."""
        if self.causal or self.recovering or self._replaying:
            return
        self.begin_recovery(ctx)

    # -- crash recovery (Section 6) ---------------------------------------------

    def begin_recovery(self, ctx: Context) -> None:
        """Ask peers for the delivered history after a crash restart.

        Meant for a *fresh* replica instance attached in place of the
        crashed one: its volatile state is empty, and replaying the
        agreed log through the deterministic state machine rebuilds it
        exactly.  Confidential (causal) services do not support log
        transfer here — their history exists only as ciphertexts.
        """
        if self.causal:
            raise ValueError("recovery is not supported for causal replicas")
        self.recovering = True
        ctx.broadcast(RecoverQuery())

    def _on_recover_query(self, ctx: Context, sender: int) -> None:
        if self.recovering:
            return  # cannot help while recovering ourselves
        ctx.send(
            sender,
            RecoverLog(entries=tuple(self.abc.delivered_log), round=self.abc.round),
        )

    def _on_recover_log(self, ctx: Context, sender: int, message: RecoverLog) -> None:
        if not self.recovering or not isinstance(message.entries, tuple):
            return
        if not isinstance(message.round, int):
            return
        # Latest answer wins: peers keep progressing while recovery is
        # in flight, and a re-query must not stay pinned to a stale
        # (or forged, then corrected) earlier reply.
        self._recovery_logs[sender] = message
        adopted = self._vouched_candidate(ctx)
        if adopted is None:
            return
        entries, supporters, round_number = adopted
        if not ctx.quorum.contains_honest(supporters):
            return
        self._adopt_log(ctx, entries, round_number)

    def _vouched_candidate(
        self, ctx: Context
    ) -> tuple[tuple, set[int], int] | None:
        """The longest reported log vouched by an honest-containing set.

        Peers answer at different moments, so identical-log matching
        stalls under load (everyone reports a different length).
        Instead, a responder *vouches* for a candidate ``(L, R)`` when
        its own log extends ``L`` and every extra entry was delivered in
        a round after ``R`` — an honest responder that executed past
        ``L`` inside rounds ``<= R`` would contradict the claim that
        everything up to ``R`` is settled by ``L``.  The adopted resume
        round is ``max(last round in L, min supporter round)``: both
        components are anchored at an honest reporter (supporters form
        an honest-containing set), so a Byzantine candidate can neither
        inflate the resume point past undecided rounds nor roll it
        below history the log itself contains.  Resuming low merely
        revisits rounds the agreement layer already treats as settled.
        """
        best: tuple[tuple[int, int], tuple, set[int], int] | None = None
        for peer in sorted(self._recovery_logs):
            cand = self._recovery_logs[peer]
            k = len(cand.entries)
            supporters: set[int] = set()
            for q in sorted(self._recovery_logs):
                log = self._recovery_logs[q]
                if len(log.entries) < k or log.entries[:k] != cand.entries:
                    continue
                if any(_entry_round(e) <= cand.round for e in log.entries[k:]):
                    continue
                supporters.add(q)
            if not ctx.quorum.contains_honest(supporters):
                continue
            floor = max((_entry_round(e) for e in cand.entries), default=0)
            round_number = max(
                floor,
                min(self._recovery_logs[q].round for q in supporters),
            )
            rank = (k, -peer)
            if best is None or rank > best[0]:
                best = (rank, cand.entries, supporters, round_number)
        if best is None:
            return None
        return best[1], best[2], best[3]

    def _adopt_log(self, ctx: Context, entries: tuple, round_number: int) -> None:
        self.recovering = False
        self._recovery_logs.clear()
        self._replay_entries(ctx, entries)
        self.abc.resume_at(ctx, round_number)
        ctx.trace.bump("replica.recoveries")

    def preload_log(self, ctx: Context, entries: tuple) -> None:
        """Replay a locally checkpointed delivery log before recovery.

        The host calls this with an *authenticated* checkpoint (HMAC
        verified against the party's own key material) before
        :meth:`begin_recovery`: peers then only need to supply the tail
        the checkpoint missed — ``_adopt_log`` skips everything already
        delivered here.  An unauthenticated or corrupted checkpoint
        must never reach this method; the host rejects it and falls
        back to pure peer recovery.
        """
        if self.causal:
            raise ValueError("checkpoints are not supported for causal replicas")
        self._replay_entries(ctx, entries)
        ctx.trace.bump("replica.checkpoint_preloads")

    def _replay_entries(self, ctx: Context, entries: tuple) -> None:
        self._replaying = True
        try:
            for item in entries:
                if not (isinstance(item, tuple) and len(item) == 2):
                    continue
                payload, rnd = item
                if payload in self.abc.delivered:
                    continue
                self.abc.delivered.add(payload)
                self.abc.delivered_log.append((payload, rnd))
                request = Request.decode(payload)
                if request is not None:
                    self._execute(
                        ctx, request, rnd if isinstance(rnd, int) else -1
                    )
        finally:
            self._replaying = False

    def pause_execution(self) -> None:
        """Defer ordered execution (epoch boundary).

        The host calls this when a committed ``Reconfigure`` starts a
        resharing: everything ordered *behind* that operation queues in
        delivery order and executes only after :meth:`resume_execution`,
        so its verdict/effect is a function of the agreed history — the
        same at every replica — and never of how long this replica's
        resharing happens to take.  Ordering itself (atomic broadcast)
        keeps running; only the apply step waits.
        """
        self._paused = True

    def rebase_broadcast(self, ctx: Context) -> None:
        """Carry the atomic broadcast onto the new epoch's session.

        The host calls this right after re-spawning the replica at the
        new session: rounds that were in flight when the old session
        was tombstoned can never decide there (their protocol traffic
        now lands on the tombstone), so the broadcast abandons them and
        re-proposes the undelivered payloads under ``ctx``.
        """
        (self.sc_abc.abc if self.causal else self.abc).rebase(ctx)

    def resume_execution(self, ctx: Context) -> None:
        """Drain the deferred queue (the epoch switch completed).

        ``ctx`` is the new epoch's session context — replies and
        signature shares for the drained requests are produced under
        the new keys.  A drained request may itself re-pause (the next
        ``Reconfigure`` in the queue); the remainder then stays queued
        for the following resume.
        """
        self._paused = False
        while self._pending_execution and not self._paused:
            request, rnd, was_replaying = self._pending_execution.pop(0)
            previous = self._replaying
            self._replaying = was_replaying or previous
            try:
                self._execute(ctx, request, rnd)
            finally:
                self._replaying = previous

    def _execute(self, ctx: Context, request: Request, rnd: int) -> None:
        if self._paused:
            # Mid-epoch-change: queue in delivery order (duplicates are
            # deduplicated by _seen_nonces when the queue drains).
            self._pending_execution.append((request, rnd, self._replaying))
            return
        key = (request.client, request.nonce)
        if key in self._seen_nonces:
            return  # at-most-once semantics across duplicate submissions
        self._seen_nonces.add(key)
        result = None
        if self.intercept is not None:
            result = self.intercept(request, rnd, self._replaying)
        if result is None:
            result = self.state_machine.apply(request)
        self._results[request.client] = (request.nonce, result)
        self.executed.append((request, result))
        if self.on_execute is not None:
            self.on_execute(request, result, rnd)
        if self._replaying:
            return  # clients were answered before the crash
        self._reply(ctx, request, result)

    def _reply(self, ctx: Context, request: Request, result: object) -> None:
        digest = ("request", request.client, request.nonce, request.operation)
        share = ctx.keys.service_signer.sign_share(
            reply_statement(digest, result), ctx.rng
        )
        reply = Reply(
            replica=ctx.party,
            client=request.client,
            nonce=request.nonce,
            result=result,
            signature_share=share,
        )
        ctx.send(request.client, reply)
