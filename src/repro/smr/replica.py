"""Service replicas: the gateway between clients and the broadcast stack.

Section 5's request flow, per server:

1. a client sends its request to more than ``t`` servers (otherwise
   corrupted servers could simply ignore it);
2. each server *a-broadcasts* the request — via plain atomic broadcast,
   or secure causal atomic broadcast when requests are confidential
   (the request then arrives as a TDH2 ciphertext and is decrypted only
   after its position in the total order is fixed);
3. on delivery, every replica applies the request to its deterministic
   state machine and returns a partial answer containing its share of
   the service's threshold signature on the result;
4. the client waits for matching answers from an honest-containing set
   and combines the shares into one service-signed reply.

The replica is a protocol instance living at session ``("service", tag)``
inside the server's :class:`~repro.core.runtime.ProtocolRuntime`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.atomic_broadcast import AtomicBroadcast
from ..core.protocol import Context, Protocol, SessionId
from ..core.secure_causal import SecureCausalBroadcast
from ..crypto.threshold_enc import Ciphertext
from . import codec
from .state_machine import Reply, Request, StateMachine

__all__ = ["SubmitRequest", "SubmitEncrypted", "RecoverQuery", "RecoverLog",
           "Replica", "service_session", "reply_statement"]


@dataclass(frozen=True)
class SubmitRequest:
    """Client -> server: an ordinary (non-confidential) request."""

    request: tuple  # Request.encode()


@dataclass(frozen=True)
class SubmitEncrypted:
    """Client -> server: a confidential request (TDH2 ciphertext)."""

    ciphertext: Ciphertext


@dataclass(frozen=True)
class SubmitUnordered:
    """Client -> server: a commuting (read-only) request.

    Section 5: "If the client requests commute, reliable broadcast
    suffices."  The replica answers straight from its current state —
    no atomic broadcast round at all.  The client still cross-checks an
    honest-containing set of matching signed answers, so a stale or
    lying minority changes nothing; if replicas are transiently
    divergent the answers may not match and the client falls back to
    the ordered path.
    """

    request: tuple  # Request.encode()


@dataclass(frozen=True)
class RecoverQuery:
    """A recovering replica asks its peers for the delivered history."""


@dataclass(frozen=True)
class RecoverLog:
    """A peer's answer: its full delivery log and current round.

    The recovering replica accepts a log once an honest-containing set
    of peers reported the identical one (Section 6, crash-recovery):
    replaying it through the deterministic state machine reconstructs
    the exact pre-crash service state.
    """

    entries: tuple  # ((payload, round), ...) in delivery order
    round: int


def service_session(tag: object = "service") -> SessionId:
    return ("service", tag)


def reply_statement(request_digest: object, result: object) -> tuple:
    """What the service's threshold signature covers in a reply."""
    return ("service-reply", request_digest, result)


class Replica(Protocol):
    """One server's replica of a trusted application."""

    def __init__(self, state_machine: StateMachine, causal: bool = False) -> None:
        self.state_machine = state_machine
        self.causal = causal
        self.abc = AtomicBroadcast()
        self.sc_abc = SecureCausalBroadcast()
        self.executed: list[tuple[Request, object]] = []
        self._seen_nonces: set[tuple[int, int]] = set()
        self.recovering = False
        self._recovery_logs: dict[int, RecoverLog] = {}
        self._replaying = False
        # Observation hook: called after every executed request (replays
        # included) — the deployment host uses it for the execution
        # journal the chaos safety checker reads, and for periodic
        # checkpointing.  Never part of the protocol itself.
        self.on_execute: Callable[[Request, object], None] | None = None

    # -- lifecycle ------------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        self.abc.on_deliver = lambda payload, rnd: self._on_ordered(ctx, payload)
        self.sc_abc.on_start(ctx)
        self.sc_abc.on_deliver = lambda plaintext, rnd: self._on_ordered_plain(
            ctx, plaintext
        )

    # -- message routing ----------------------------------------------------------

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        if isinstance(message, SubmitRequest):
            self._on_submit(ctx, message.request)
        elif isinstance(message, SubmitUnordered):
            self._on_submit_unordered(ctx, message.request)
        elif isinstance(message, SubmitEncrypted):
            if self.causal and isinstance(message.ciphertext, Ciphertext):
                self.sc_abc.submit(ctx, message.ciphertext)
        elif isinstance(message, RecoverQuery):
            self._on_recover_query(ctx, sender)
        elif isinstance(message, RecoverLog):
            self._on_recover_log(ctx, sender, message)
        elif self.causal:
            self.sc_abc.on_message(ctx, sender, message)
        else:
            self.abc.on_message(ctx, sender, message)

    def _on_submit(self, ctx: Context, encoded: object) -> None:
        request = Request.decode(encoded)
        if request is None:
            return
        if self.causal:
            # A confidential service refuses plaintext submissions: they
            # would break input causality for everyone.
            return
        self.abc.submit(ctx, request.encode())

    def _on_submit_unordered(self, ctx: Context, encoded: object) -> None:
        """Answer a commuting request from current state (no ordering)."""
        request = Request.decode(encoded)
        if request is None or self.causal or self.recovering:
            return
        if not self.state_machine.is_read_only(request.operation):
            return  # mutating requests must take the ordered path
        result = self.state_machine.apply(request)
        digest = ("request", request.client, request.nonce, request.operation)
        share = ctx.keys.service_signer.sign_share(
            reply_statement(digest, result), ctx.rng
        )
        ctx.send(
            request.client,
            Reply(
                replica=ctx.party,
                client=request.client,
                nonce=request.nonce,
                result=result,
                signature_share=share,
            ),
        )

    # -- ordered execution -----------------------------------------------------------

    def _on_ordered(self, ctx: Context, payload: object) -> None:
        request = Request.decode(payload)
        if request is None:
            return  # a corrupted server ordered junk; skip deterministically
        self._execute(ctx, request)

    def _on_ordered_plain(self, ctx: Context, plaintext: object) -> None:
        if not isinstance(plaintext, bytes):
            return
        try:
            decoded = codec.loads(plaintext)
        except codec.CodecError:
            return
        request = Request.decode(decoded)
        if request is None:
            return
        self._execute(ctx, request)

    # -- crash recovery (Section 6) ---------------------------------------------

    def begin_recovery(self, ctx: Context) -> None:
        """Ask peers for the delivered history after a crash restart.

        Meant for a *fresh* replica instance attached in place of the
        crashed one: its volatile state is empty, and replaying the
        agreed log through the deterministic state machine rebuilds it
        exactly.  Confidential (causal) services do not support log
        transfer here — their history exists only as ciphertexts.
        """
        if self.causal:
            raise ValueError("recovery is not supported for causal replicas")
        self.recovering = True
        ctx.broadcast(RecoverQuery())

    def _on_recover_query(self, ctx: Context, sender: int) -> None:
        if self.recovering:
            return  # cannot help while recovering ourselves
        ctx.send(
            sender,
            RecoverLog(entries=tuple(self.abc.delivered_log), round=self.abc.round),
        )

    def _on_recover_log(self, ctx: Context, sender: int, message: RecoverLog) -> None:
        if not self.recovering or not isinstance(message.entries, tuple):
            return
        self._recovery_logs.setdefault(sender, message)
        # Adopt a log once an honest-containing set reported identical
        # *entries*.  Round numbers are deliberately left out of the
        # match: honest peers with the same log can sit in different
        # rounds (agreement for the next slot advances asynchronously),
        # and requiring equal rounds would let recovery stall forever.
        by_log: dict[tuple, set[int]] = {}
        for peer in sorted(self._recovery_logs):
            log = self._recovery_logs[peer]
            by_log.setdefault(log.entries, set()).add(peer)
        # Log tuples are not orderable across shapes; adopt the candidate
        # backed by the lowest-numbered peer so the choice is a function
        # of the received set, not of arrival order.
        candidates = sorted(by_log.items(), key=lambda kv: min(kv[1]))
        for entries, supporters in candidates:
            if ctx.quorum.contains_honest(supporters):
                # The adopted round is the smallest in the supporting
                # set: it is bounded by some honest member's round, and
                # starting low merely revisits rounds the agreement
                # layer already treats as settled.
                round_number = min(
                    self._recovery_logs[peer].round for peer in supporters
                )
                self._adopt_log(ctx, entries, round_number)
                return

    def _adopt_log(self, ctx: Context, entries: tuple, round_number: int) -> None:
        self.recovering = False
        self._recovery_logs.clear()
        self._replay_entries(ctx, entries)
        self.abc.resume_at(ctx, round_number)
        ctx.trace.bump("replica.recoveries")

    def preload_log(self, ctx: Context, entries: tuple) -> None:
        """Replay a locally checkpointed delivery log before recovery.

        The host calls this with an *authenticated* checkpoint (HMAC
        verified against the party's own key material) before
        :meth:`begin_recovery`: peers then only need to supply the tail
        the checkpoint missed — ``_adopt_log`` skips everything already
        delivered here.  An unauthenticated or corrupted checkpoint
        must never reach this method; the host rejects it and falls
        back to pure peer recovery.
        """
        if self.causal:
            raise ValueError("checkpoints are not supported for causal replicas")
        self._replay_entries(ctx, entries)
        ctx.trace.bump("replica.checkpoint_preloads")

    def _replay_entries(self, ctx: Context, entries: tuple) -> None:
        self._replaying = True
        try:
            for item in entries:
                if not (isinstance(item, tuple) and len(item) == 2):
                    continue
                payload, rnd = item
                if payload in self.abc.delivered:
                    continue
                self.abc.delivered.add(payload)
                self.abc.delivered_log.append((payload, rnd))
                request = Request.decode(payload)
                if request is not None:
                    self._execute(ctx, request)
        finally:
            self._replaying = False

    def _execute(self, ctx: Context, request: Request) -> None:
        key = (request.client, request.nonce)
        if key in self._seen_nonces:
            return  # at-most-once semantics across duplicate submissions
        self._seen_nonces.add(key)
        result = self.state_machine.apply(request)
        self.executed.append((request, result))
        if self.on_execute is not None:
            self.on_execute(request, result)
        if self._replaying:
            return  # clients were answered before the crash
        digest = ("request", request.client, request.nonce, request.operation)
        share = ctx.keys.service_signer.sign_share(
            reply_statement(digest, result), ctx.rng
        )
        reply = Reply(
            replica=ctx.party,
            client=request.client,
            nonce=request.nonce,
            result=result,
            signature_share=share,
        )
        ctx.send(request.client, reply)
