"""Executable baselines for the Figure 1 comparison (related work)."""

from .failure_detector import TimeoutFailureDetector, ViewBasedGroup
from .leader_based import LeaderConsensus, leader_session

__all__ = [
    "TimeoutFailureDetector",
    "ViewBasedGroup",
    "LeaderConsensus",
    "leader_session",
]
