"""Deterministic leader-based consensus in the style of CL99 (PBFT).

Figure 1 row "CL99": a deterministic three-phase protocol that is very
fast when the network is friendly, maintains safety under all
circumstances, but relies on *timeouts* for liveness — "it requires no
explicit timeout values, but assumes that message transmission delays
do not grow faster than some predetermined function".  Since a
Byzantine network adversary controls all delays, it can starve every
leader just long enough to force an endless sequence of view changes:
liveness is lost while safety holds.  Experiment E1 demonstrates
exactly this and contrasts it with the randomized stack, which decides
under the same schedule.

This is a single-slot consensus (one decision per instance), which is
all the comparison experiment needs:

* view ``v`` has leader ``v mod n``;
* leader broadcasts ``PREPREPARE(v, value)``;
* replicas send ``PREPARE(v, value)``; a strong quorum (2t+1) of
  prepares forms a *prepared certificate*;
* replicas send ``COMMIT(v, value)``; a strong quorum of commits
  decides.
* Timeouts are modeled in message-count time: every delivered message
  ticks a watchdog; a replica that makes no progress within
  ``timeout`` ticks broadcasts ``VIEWCHANGE(v+1, prepared?)``; a
  quorum of view-change messages starts the next view, whose leader
  must re-propose any reported prepared value (the PBFT safety rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..core.protocol import Context, Protocol, SessionId

__all__ = [
    "PrePrepare",
    "Prepare",
    "Commit",
    "ViewChange",
    "NewView",
    "LeaderConsensus",
    "leader_session",
]


@dataclass(frozen=True)
class PrePrepare:
    view: int
    value: Hashable


@dataclass(frozen=True)
class Prepare:
    view: int
    value: Hashable


@dataclass(frozen=True)
class Commit:
    view: int
    value: Hashable


@dataclass(frozen=True)
class ViewChange:
    new_view: int
    prepared_view: int  # -1 if nothing prepared
    prepared_value: Hashable | None


@dataclass(frozen=True)
class NewView:
    view: int
    value: Hashable


def leader_session(tag: object) -> SessionId:
    return ("leader-consensus", tag)


class LeaderConsensus(Protocol):
    """One deterministic consensus instance; outputs the decided value."""

    def __init__(self, value: Hashable, timeout: int = 40) -> None:
        self.my_value = value
        self.timeout = timeout
        self.view = 0
        self.decided: Hashable | None = None
        self.accepted: dict[int, Hashable] = {}  # view -> pre-prepared value
        self.prepares: dict[tuple[int, Hashable], set[int]] = {}
        self.commits: dict[tuple[int, Hashable], set[int]] = {}
        self.prepared: tuple[int, Hashable] | None = None
        self.view_changes: dict[int, dict[int, ViewChange]] = {}
        self.committed_sent: set[int] = set()
        self.idle_ticks = 0
        self.view_changes_seen = 0
        self._view_changes_sent: set[int] = set()

    # -- helpers ---------------------------------------------------------------

    def leader_of(self, ctx: Context, view: int) -> int:
        return view % ctx.n

    def current_leader(self, ctx: Context) -> int:
        return self.leader_of(ctx, self.view)

    def _progress(self) -> None:
        self.idle_ticks = 0

    # -- lifecycle ------------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        if ctx.party == self.current_leader(ctx):
            ctx.broadcast(PrePrepare(0, self.my_value))

    def tick(self, ctx: Context) -> None:
        """Message-count timeout: the harness calls this on every step a
        replica observes; silence past the timeout triggers a view change."""
        if self.decided is not None:
            return
        self.idle_ticks += 1
        if self.idle_ticks >= self.timeout:
            self._progress()
            self._start_view_change(ctx, self.view + 1)

    def _start_view_change(self, ctx: Context, new_view: int) -> None:
        if new_view <= self.view or new_view in self._view_changes_sent:
            return
        self._view_changes_sent.add(new_view)
        self.idle_ticks = 0  # the watchdog restarts for the next view
        prepared_view, prepared_value = (-1, None)
        if self.prepared is not None:
            prepared_view, prepared_value = self.prepared
        ctx.broadcast(ViewChange(new_view, prepared_view, prepared_value))

    # -- messages -----------------------------------------------------------------

    def on_message(self, ctx: Context, sender: int, message: object) -> None:
        if self.decided is not None:
            return
        if isinstance(message, PrePrepare):
            self._on_preprepare(ctx, sender, message)
        elif isinstance(message, Prepare):
            self._collect(ctx, sender, self.prepares, message.view, message.value)
            self._maybe_prepared(ctx, message.view, message.value)
        elif isinstance(message, Commit):
            self._collect(ctx, sender, self.commits, message.view, message.value)
            self._maybe_decide(ctx, message.view, message.value)
        elif isinstance(message, ViewChange):
            self._on_view_change(ctx, sender, message)
        elif isinstance(message, NewView):
            self._on_new_view(ctx, sender, message)

    def _on_preprepare(self, ctx: Context, sender: int, message: PrePrepare) -> None:
        if message.view != self.view or sender != self.leader_of(ctx, message.view):
            return
        if message.view in self.accepted:
            return
        self.accepted[message.view] = message.value
        self._progress()
        ctx.broadcast(Prepare(message.view, message.value))

    def _collect(
        self,
        ctx: Context,
        sender: int,
        store: dict[tuple[int, Hashable], set[int]],
        view: int,
        value: Hashable,
    ) -> None:
        store.setdefault((view, value), set()).add(sender)

    def _maybe_prepared(self, ctx: Context, view: int, value: Hashable) -> None:
        if view != self.view or self.accepted.get(view) != value:
            return
        if view in self.committed_sent:
            return
        if ctx.quorum.is_strong_quorum(self.prepares.get((view, value), set())):
            self.committed_sent.add(view)
            if self.prepared is None or self.prepared[0] < view:
                self.prepared = (view, value)
            self._progress()
            ctx.broadcast(Commit(view, value))

    def _maybe_decide(self, ctx: Context, view: int, value: Hashable) -> None:
        if ctx.quorum.is_strong_quorum(self.commits.get((view, value), set())):
            self.decided = value
            ctx.output(value)

    def _on_view_change(self, ctx: Context, sender: int, message: ViewChange) -> None:
        if message.new_view <= self.view:
            return
        bucket = self.view_changes.setdefault(message.new_view, {})
        bucket.setdefault(sender, message)
        # Join the view change once an honest-containing set asked for it.
        if ctx.quorum.contains_honest(bucket) and message.new_view > self.view:
            self._start_view_change(ctx, message.new_view)
        if not ctx.quorum.is_strong_quorum(bucket):
            return
        # Enter the new view.
        self.view = message.new_view
        self.view_changes_seen += 1
        self._progress()
        if ctx.party == self.leader_of(ctx, self.view):
            # PBFT safety rule: re-propose the highest reported prepared
            # value, otherwise the leader's own.
            best_view, best_value = -1, self.my_value
            for vc in bucket.values():
                if vc.prepared_view > best_view and vc.prepared_value is not None:
                    best_view, best_value = vc.prepared_view, vc.prepared_value
            ctx.broadcast(PrePrepare(self.view, best_value))
