"""Timeout-based failure detection and view-based membership.

Figure 1 rows "Rampart" / "SecureRing" / "DGG00": group communication
systems in the Byzantine model rely on failure detectors that are, in
practice, timeouts.  Section 2.2 argues the flaw: an adversary that
controls scheduling can delay an honest server past any timeout, so
the detector makes *unbounded numbers of wrong suspicions*; and a
membership protocol that removes suspected servers "easily falls prey
to an attacker that is able to delay honest servers just long enough
until corrupted servers hold the majority in the group".

Two components, both driven in message-count time by the simulator:

* :class:`TimeoutFailureDetector` — suspects any party not heard from
  within ``timeout`` observed deliveries; experiment E1 counts its
  wrong suspicions of perfectly honest servers under the delay attack.
* :class:`ViewBasedGroup` — Rampart-style membership: a strong quorum
  *of the current view* voting to expel a member shrinks the view.
  Once corruptions hold a two-thirds majority of the shrunken view,
  the group will certify arbitrary statements — the safety collapse
  the paper's static-group design avoids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TimeoutFailureDetector", "ViewBasedGroup"]


@dataclass
class TimeoutFailureDetector:
    """A per-observer timeout detector over message-count time.

    ``heard(p)`` resets p's silence counter; ``tick()`` advances time by
    one observed delivery.  ``suspected`` holds the current suspicion
    set; ``wrong_suspicions`` counts (cumulatively) every suspicion
    event against a party in ``honest`` — the quantity Section 2.2
    says is unbounded against an adversarial scheduler.
    """

    parties: list[int]
    timeout: int
    honest: frozenset[int] = frozenset()
    last_heard: dict[int, int] = field(default_factory=dict)
    clock: int = 0
    suspected: set[int] = field(default_factory=set)
    wrong_suspicions: int = 0

    def __post_init__(self) -> None:
        for p in self.parties:
            self.last_heard[p] = 0

    def heard(self, party: int) -> None:
        if party not in self.last_heard:
            return
        self.last_heard[party] = self.clock
        if party in self.suspected:
            self.suspected.discard(party)  # late message: suspicion was wrong

    def tick(self) -> list[int]:
        """Advance time; returns newly suspected parties."""
        self.clock += 1
        fresh = []
        for party, last in self.last_heard.items():
            if party in self.suspected:
                continue
            if self.clock - last > self.timeout:
                self.suspected.add(party)
                fresh.append(party)
                if party in self.honest:
                    self.wrong_suspicions += 1
        return fresh


@dataclass
class ViewBasedGroup:
    """Dynamic membership driven by suspicion votes (Rampart-style).

    The group starts as all parties.  ``vote_expel(voter, target)``
    registers a (possibly adversarial or timeout-induced) expulsion
    vote; when more than two thirds of the *current* view agree, the
    target is removed and a new view is installed.  ``corrupt_majority``
    reports when corrupted members reach one third of the current view
    — from that point the usual 2/3-quorum certificates within the view
    can be formed around honest members' backs, so integrity is gone.
    """

    members: list[int]
    corrupted: frozenset[int] = frozenset()
    view_number: int = 0
    votes: dict[int, set[int]] = field(default_factory=dict)
    expelled: list[int] = field(default_factory=list)

    def vote_expel(self, voter: int, target: int) -> bool:
        """Returns True if the vote installed a new view."""
        if voter not in self.members or target not in self.members:
            return False
        supporters = self.votes.setdefault(target, set())
        supporters.add(voter)
        needed = (2 * len(self.members)) // 3 + 1
        if len(supporters & set(self.members)) >= needed:
            self.members = [m for m in self.members if m != target]
            self.expelled.append(target)
            self.view_number += 1
            self.votes.pop(target, None)
            return True
        return False

    @property
    def corrupt_fraction(self) -> float:
        if not self.members:
            return 1.0
        bad = sum(1 for m in self.members if m in self.corrupted)
        return bad / len(self.members)

    @property
    def integrity_lost(self) -> bool:
        """Corrupted members can block or forge 2/3 quorums of the view."""
        if not self.members:
            return True
        bad = sum(1 for m in self.members if m in self.corrupted)
        return 3 * bad >= len(self.members)
