"""``repro.analysis`` — AST-based protocol-invariant linter.

Cachin's architecture (DSN 2001) is safe only while a handful of
cross-cutting invariants hold everywhere in the codebase:

* quorum logic flows through the :class:`~repro.adversary.quorums.QuorumSystem`
  abstraction (RL001, Section 4.2);
* every signature/certificate verification gates progress (RL002,
  Sections 3.3-3.5);
* the protocol core is deterministic so adversarial schedules replay
  (RL003, Section 2);
* every sent message dataclass is wire-registered and handled (RL004);
* async handlers neither drop coroutines nor mutate shared state after
  an ``await`` without re-checking the round guard (RL005);
* whole-program: no unverified Byzantine input reaches replica state —
  taint from the deliver paths must pass a verify/combine/quorum gate
  before a state-machine apply, checkpoint/journal write, outbound
  threshold signing, or quorum-set insertion (RL006, Sections 3.3-5);
* every wire-registered message has a reachable handler and no handler
  consumes an unregistered type (RL007).

RL006/RL007 run on the call graph + taint engine in
:mod:`repro.analysis.project` and :mod:`repro.analysis.dataflow`.

Run it with ``python -m repro lint`` (see docs/STATIC_ANALYSIS.md), or
programmatically::

    from repro.analysis import run_lint
    report = run_lint([Path("src/repro")], baseline_path=Path("lint-baseline.json"))
    assert report.ok, report.format_text()
"""

from .baseline import Baseline, BaselineEntry, BaselineError
from .diagnostics import Diagnostic, Severity
from .engine import (
    DEFAULT_BASELINE_NAME,
    LintReport,
    discover_files,
    format_json,
    lint_sources,
    run_lint,
    write_baseline,
)
from .dataflow import TaintAnalysis, TaintCatalog
from .project import ProjectGraph
from .rules import ALL_RULES, Rule, rules_by_id
from .sarif import format_sarif
from .source import LintSyntaxError, SourceFile

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "DEFAULT_BASELINE_NAME",
    "Diagnostic",
    "LintReport",
    "LintSyntaxError",
    "ProjectGraph",
    "Rule",
    "Severity",
    "SourceFile",
    "TaintAnalysis",
    "TaintCatalog",
    "discover_files",
    "format_json",
    "format_sarif",
    "lint_sources",
    "run_lint",
    "rules_by_id",
    "write_baseline",
]
