"""Violation baseline: track legacy findings, ratchet them down.

The baseline file (JSON, committed at the repository root as
``lint-baseline.json``) records findings that predate the linter or are
intentional, each with a justifying ``reason``.  A finding matches a
baseline entry by *fingerprint* — ``(rule, path, normalized source
line)`` — so entries survive unrelated edits that shift line numbers,
but a *new* identical violation elsewhere (different line content or
file) is still reported.  Each entry absorbs at most ``count``
occurrences (default 1), so duplicating a baselined line is reported.

Ratcheting: entries that no longer match anything are *stale*; the
guard test fails on stale entries, forcing the baseline to shrink as
violations are fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .diagnostics import Diagnostic

__all__ = ["BaselineEntry", "Baseline", "BaselineError"]

_VERSION = 1


class BaselineError(ValueError):
    """Malformed baseline file."""


@dataclass
class BaselineEntry:
    rule: str
    path: str
    code: str
    reason: str = ""
    line: int = 0  # informational only; matching ignores it
    count: int = 1

    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.code)

    def to_dict(self) -> dict:
        out = {"rule": self.rule, "path": self.path, "line": self.line, "code": self.code}
        if self.reason:
            out["reason"] = self.reason
        if self.count != 1:
            out["count"] = self.count
        return out


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != _VERSION:
            raise BaselineError(f"unsupported baseline format in {path}")
        entries = []
        for raw in data.get("entries", []):
            try:
                entries.append(
                    BaselineEntry(
                        rule=raw["rule"],
                        path=raw["path"],
                        code=raw["code"],
                        reason=raw.get("reason", ""),
                        line=int(raw.get("line", 0)),
                        count=int(raw.get("count", 1)),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(f"malformed baseline entry {raw!r}") from exc
        return cls(entries=entries)

    @classmethod
    def from_diagnostics(cls, diagnostics: list[Diagnostic], reason: str = "") -> "Baseline":
        counts: dict[tuple[str, str, str], BaselineEntry] = {}
        for diag in sorted(diagnostics, key=Diagnostic.sort_key):
            key = diag.fingerprint()
            if key in counts:
                counts[key].count += 1
            else:
                counts[key] = BaselineEntry(
                    rule=diag.rule,
                    path=diag.path,
                    code=diag.code,
                    reason=reason,
                    line=diag.line,
                )
        return cls(entries=list(counts.values()))

    def write(self, path: Path) -> None:
        payload = {
            "version": _VERSION,
            "comment": (
                "Known findings of `python -m repro lint`, each with a justifying "
                "reason. Ratchet: fix a finding, then delete its entry; the guard "
                "test fails on stale entries. See docs/STATIC_ANALYSIS.md."
            ),
            "entries": [entry.to_dict() for entry in self.entries],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def split(
        self, diagnostics: list[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic], list[BaselineEntry]]:
        """Partition into (new, baselined) and report stale entries."""
        budget: dict[tuple[str, str, str], int] = {}
        initial: dict[tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.fingerprint()] = budget.get(entry.fingerprint(), 0) + entry.count
        initial.update(budget)
        new: list[Diagnostic] = []
        matched: list[Diagnostic] = []
        for diag in diagnostics:
            key = diag.fingerprint()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                matched.append(diag)
            else:
                new.append(diag)
        # An entry is stale when its fingerprint's budget was never touched
        # at all; a partially-consumed multi-count entry is not stale.
        stale = [
            entry
            for entry in self.entries
            if entry.count > 0
            and budget.get(entry.fingerprint(), 0) == initial.get(entry.fingerprint(), 0)
        ]
        return new, matched, stale
