"""Parsed source files and inline suppression handling.

A :class:`SourceFile` bundles a file's text, its parsed AST and its
package-relative path (the path the scoping rules and the baseline key
off, e.g. ``core/binary_agreement.py``).  Inline suppressions use the
dedicated marker

    # repro: noqa            -- silence every rule on this line
    # repro: noqa-RL003      -- silence one rule
    # repro: noqa-RL001,RL003

so they never collide with flake8/ruff ``# noqa`` comments.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SourceFile", "LintSyntaxError", "package_relative_path"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<rules>RL\d{3}(?:\s*,\s*RL\d{3})*))?", re.IGNORECASE
)


class LintSyntaxError(Exception):
    """A file to be linted does not parse."""

    def __init__(self, path: str, error: SyntaxError) -> None:
        super().__init__(f"{path}: {error}")
        self.path = path
        self.error = error


def package_relative_path(path: Path) -> str:
    """Path relative to the innermost ``repro`` package directory.

    Falls back to the file name when the file is not inside a ``repro``
    package (e.g. test fixtures, which pass an explicit relpath).
    """
    parts = path.resolve().parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1 :])
    return path.name


@dataclass
class SourceFile:
    """One parsed file, ready for the checkers."""

    path: str  # display path (as given on the command line)
    relpath: str  # package-relative path used for scoping and baselines
    text: str
    tree: ast.Module = field(repr=False)
    lines: list[str] = field(repr=False)
    # line number -> None (suppress all) or set of rule ids
    noqa: dict[int, set[str] | None] = field(repr=False)

    @classmethod
    def from_source(cls, text: str, *, path: str = "<memory>", relpath: str | None = None) -> "SourceFile":
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            raise LintSyntaxError(path, exc) from exc
        lines = text.splitlines()
        noqa = _collect_noqa(lines)
        _propagate_noqa(tree, noqa)
        return cls(
            path=path,
            relpath=relpath if relpath is not None else path,
            text=text,
            tree=tree,
            lines=lines,
            noqa=noqa,
        )

    @classmethod
    def from_path(cls, path: Path, *, relpath: str | None = None) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        if relpath is None:
            relpath = package_relative_path(path)
        return cls.from_source(text, path=str(path), relpath=relpath)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_suppressed(self, line: int, rule: str) -> bool:
        if line not in self.noqa:
            return False
        rules = self.noqa[line]
        return rules is None or rule in rules

    def unknown_noqa_diagnostics(self) -> list:
        """Warn on suppressions naming a rule that does not exist.

        A suppression with a typo'd rule id silently suppresses nothing
        and outlives the finding it meant to silence.  Emitted as RL000
        warnings so they surface without failing CI.
        """
        from .diagnostics import Diagnostic, Severity
        from .rules import ALL_RULES

        out: list[Diagnostic] = []
        for lineno, rules in sorted(self.noqa.items()):
            if rules is None:
                continue
            for rule_id in sorted(rules - set(ALL_RULES)):
                out.append(
                    Diagnostic(
                        rule="RL000",
                        path=self.relpath,
                        line=lineno,
                        col=0,
                        message=f"noqa suppression names unknown rule {rule_id}",
                        severity=Severity.WARNING,
                        hint="fix the rule id or delete the stale suppression",
                        code=self.line_text(lineno),
                    )
                )
        return out


def _collect_noqa(lines: list[str]) -> dict[int, set[str] | None]:
    noqa: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(lines, start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            noqa[lineno] = None
        else:
            ids = {rule.strip().upper() for rule in rules.split(",")}
            existing = noqa.get(lineno)
            if existing is None and lineno in noqa:
                continue  # blanket suppression already present
            noqa[lineno] = ids | (existing or set())
    return noqa


def _merge_noqa(noqa: dict[int, set[str] | None], target: int, source: int) -> None:
    found = noqa.get(source, set())
    if source not in noqa:
        return
    existing = noqa.get(target)
    if found is None or (target in noqa and existing is None):
        noqa[target] = None
    else:
        noqa[target] = set(found) | (existing or set())


def _propagate_noqa(tree: ast.Module, noqa: dict[int, set[str] | None]) -> None:
    """Map suppressions onto the line diagnostics actually anchor to.

    * multiline statements: a noqa anywhere in the statement's span
      suppresses at its first line (where checkers report);
    * decorated defs/classes: a noqa on a decorator line suppresses at
      the ``def``/``class`` line (``node.lineno`` excludes decorators).
    """
    if not noqa:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        decorators = getattr(node, "decorator_list", [])
        for deco in decorators:
            end = getattr(deco, "end_lineno", None) or deco.lineno
            for lineno in range(deco.lineno, end + 1):
                if lineno != node.lineno:
                    _merge_noqa(noqa, node.lineno, lineno)
        body = getattr(node, "body", None)
        if isinstance(body, list) and body:  # compound: header lines only
            span_end = max(node.lineno, body[0].lineno - 1)
        else:
            span_end = getattr(node, "end_lineno", None) or node.lineno
        for lineno in range(node.lineno + 1, span_end + 1):
            _merge_noqa(noqa, node.lineno, lineno)
