"""Incremental-lint result cache (``.lint-cache.json``).

``repro lint`` re-runs on every commit and in CI; most runs see a tree
where almost nothing changed since the last one.  The cache keys each
file's *finished* per-file outcome — post-suppression diagnostics,
suppression count, unknown-noqa warnings, parse errors — by a SHA-256
digest of the file's bytes, and the project-wide outcome (RL004,
RL006–RL009 need every tree at once) by a digest of the whole file set,
so any single-file change invalidates exactly the project entry plus
that file's entry.

Correctness guards:

* the whole cache is salted with a digest of the analysis package's own
  sources plus the active rule ids — editing the linter, or linting
  with a different ``--rules`` selection, starts from a cold cache;
* only *pre-baseline* results are cached; the baseline split always
  runs fresh so editing ``lint-baseline.json`` takes effect immediately;
* a corrupt or version-skewed cache file is silently treated as empty.

The file is gitignored scratch state — deleting it is always safe, and
``--no-cache`` bypasses it entirely.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .diagnostics import Diagnostic

__all__ = ["LintCache", "compute_salt", "content_digest", "tree_key"]

_CACHE_VERSION = 1


def content_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def compute_salt(rule_ids: list[str] | None) -> str:
    """Digest of the analysis package's own sources + the rule selection.

    Any edit to the linter itself (a rule, the engine, this module)
    yields different results for identical inputs, so it must flush the
    cache; so must running with a different ``--rules`` subset.
    """
    digest = hashlib.sha256()
    package = Path(__file__).resolve().parent
    for path in sorted(package.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(str(path.relative_to(package)).encode())
        digest.update(path.read_bytes())
    normalized = (
        sorted(r.strip().upper() for r in rule_ids) if rule_ids is not None else None
    )
    digest.update(repr(normalized).encode())
    return digest.hexdigest()


def tree_key(digests: dict[str, str]) -> str:
    """One digest for the whole file set (project-wide rule cache key)."""
    digest = hashlib.sha256()
    for key in sorted(digests):
        digest.update(key.encode())
        digest.update(digests[key].encode())
    return digest.hexdigest()


def _dump_diags(diags: list[Diagnostic]) -> list[dict]:
    return [diag.to_dict() for diag in diags]


def _load_diags(data: list[dict]) -> list[Diagnostic]:
    return [Diagnostic.from_dict(item) for item in data]


class LintCache:
    """Per-file and project-wide lint results keyed by content digests."""

    def __init__(self, path: Path, salt: str) -> None:
        self.path = path
        self.salt = salt
        self.files: dict[str, dict] = {}
        self.project: dict | None = None
        self.dirty = False

    @classmethod
    def load(cls, path: Path, salt: str) -> "LintCache":
        cache = cls(path, salt)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if (
            not isinstance(data, dict)
            or data.get("version") != _CACHE_VERSION
            or data.get("salt") != salt
        ):
            cache.dirty = True  # stale shell: overwrite on save
            return cache
        files = data.get("files")
        if isinstance(files, dict):
            cache.files = files
        project = data.get("project")
        if isinstance(project, dict):
            cache.project = project
        return cache

    # -- per-file entries ---------------------------------------------------

    def get_file(self, key: str, digest: str) -> dict | None:
        entry = self.files.get(key)
        if entry is None or entry.get("digest") != digest:
            return None
        return entry

    def put_file(
        self,
        key: str,
        digest: str,
        *,
        kept: list[Diagnostic],
        suppressed: int,
        noqa: list[Diagnostic],
        timings: dict[str, float],
        error: str | None,
    ) -> None:
        self.files[key] = {
            "digest": digest,
            "kept": _dump_diags(kept),
            "suppressed": suppressed,
            "noqa": _dump_diags(noqa),
            "timings": timings,
            "error": error,
        }
        self.dirty = True

    @staticmethod
    def file_result(
        entry: dict,
    ) -> tuple[list[Diagnostic], int, list[Diagnostic], dict[str, float], str | None]:
        return (
            _load_diags(entry.get("kept", [])),
            int(entry.get("suppressed", 0)),
            _load_diags(entry.get("noqa", [])),
            dict(entry.get("timings", {})),
            entry.get("error"),
        )

    # -- the project-wide entry ---------------------------------------------

    def get_project(self, key: str) -> dict | None:
        if self.project is None or self.project.get("key") != key:
            return None
        return self.project

    def put_project(
        self,
        key: str,
        *,
        kept: list[Diagnostic],
        suppressed: int,
        timings: dict[str, float],
    ) -> None:
        self.project = {
            "key": key,
            "kept": _dump_diags(kept),
            "suppressed": suppressed,
            "timings": timings,
        }
        self.dirty = True

    @staticmethod
    def project_result(
        entry: dict,
    ) -> tuple[list[Diagnostic], int, dict[str, float]]:
        return (
            _load_diags(entry.get("kept", [])),
            int(entry.get("suppressed", 0)),
            dict(entry.get("timings", {})),
        )

    # -- persistence --------------------------------------------------------

    def prune(self, live_keys: set[str]) -> None:
        """Drop entries for files no longer in the scanned set."""
        dead = [key for key in self.files if key not in live_keys]
        for key in dead:
            del self.files[key]
            self.dirty = True

    def save(self) -> None:
        if not self.dirty:
            return
        payload = {
            "version": _CACHE_VERSION,
            "salt": self.salt,
            "files": self.files,
            "project": self.project,
        }
        try:
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            # Scratch state on a read-only checkout: caching is best-effort.
            return
        self.dirty = False
