"""Taint dataflow over the :class:`~repro.analysis.project.ProjectGraph`.

The safety argument of the paper is one cross-cutting invariant: every
value a replica *acts on* (executes, signs, checkpoints, counts toward
a quorum) arrived from a potentially Byzantine peer and therefore must
first pass a threshold-verified gate.  This module checks it as a
classic source → sanitizer → sink taint problem:

* **intra-procedural**: a forward walk over each function body in
  statement order, propagating *taint labels* through assignments,
  calls, attribute access, containers and comprehensions;
* **interprocedural**: per-function :class:`FunctionFlow` facts (which
  labels reach returns, sinks, field stores, and callee arguments) are
  composed over the call graph; a global closure then decides which
  labels are actually reachable from a taint root.

Labels — the nodes of the global flow graph:

* ``("param", qualname, index)`` — a function parameter;
* ``("source", qualname, line, name)`` — the result of a source call
  (``wire.loads``, ``codec.loads``);
* ``("field", ClassName, attr)`` — an instance attribute (object- and
  flow-insensitive: one label per class/attr pair project-wide).

Sanitization is *statement-ordered within a function*: once a call to a
catalogued sanitizer (``verify*``, ``combine``, ``check``, the quorum
predicates, ``compare_digest``) has executed, later flows in the same
function are treated as gated.  This models the stack's universal
early-return idiom (``if not key.verify(...): return``) without full
path sensitivity; it deliberately *under*-approximates (a sanitizer on
an unrelated value also gates), because RL006's job is to prove the
**absence** of whole functions that consume Byzantine input with no
gate at all — the SecureSMART failure mode — not to re-verify the gates
themselves.  Loops run twice so loop-carried taint converges; the whole
interprocedural pass iterates to a fixpoint on summaries and fields.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dataclass_field

from .project import CallSite, FunctionInfo, ProjectGraph, walk_function_body

__all__ = [
    "ArgPass",
    "FieldStore",
    "FunctionFlow",
    "Label",
    "SinkHit",
    "TaintAnalysis",
    "TaintCatalog",
    "TaintPath",
]

Label = tuple[str, ...]

# Mutating container methods: storing a tainted value through one of
# these on ``self.X`` taints the field, exactly like ``self.X = v``.
_MUTATORS = frozenset(
    {"append", "add", "insert", "extend", "update", "setdefault", "__setitem__"}
)

_MAX_FIXPOINT_PASSES = 8


@dataclass(frozen=True)
class TaintCatalog:
    """The source / sanitizer / sink catalogue a rule runs with."""

    # Called names whose *result* is tainted (network deserialization).
    source_calls: frozenset[str]
    # Method names whose message-like parameter is tainted by definition
    # (deliver-path entry points); the parameter picked is the one named
    # in source_param_names, else the last positional parameter.
    source_methods: frozenset[str]
    source_param_names: frozenset[str]
    # Called names that gate a flow (threshold verification catalogue).
    sanitizers: frozenset[str]
    # Called name -> human-readable sink kind.
    sink_calls: dict[str, str]
    # Receiver name fragments for which ``<recv>.write(...)`` is a sink.
    sink_write_receivers: frozenset[str] = frozenset()
    # Restrict source_calls to project callees defined in these relpaths
    # (empty = any resolved callee counts).
    source_call_paths: frozenset[str] = frozenset()
    # For *unresolved* source_calls: accept only these receiver names
    # (``wire.loads`` but not ``json.loads``; empty = any receiver).
    source_receivers: frozenset[str] = frozenset()

    def tainted_params(self, fn: FunctionInfo) -> frozenset[int]:
        if fn.name not in self.source_methods:
            return frozenset()
        named = [
            i for i, p in enumerate(fn.params) if p in self.source_param_names
        ]
        if named:
            return frozenset(named)
        if fn.params:
            return frozenset({len(fn.params) - 1})
        return frozenset()


@dataclass(frozen=True)
class SinkHit:
    """Taint labels reached a catalogued sink call."""

    qualname: str
    line: int
    col: int
    sink: str  # called name
    kind: str  # human-readable sink kind
    labels: frozenset[Label]
    gated: bool


@dataclass(frozen=True)
class FieldStore:
    """Taint labels stored into ``self.<attr>`` (or a mutator on it)."""

    qualname: str
    line: int
    col: int
    cls: str
    attr: str
    labels: frozenset[Label]
    gated: bool


@dataclass(frozen=True)
class ArgPass:
    """Taint labels passed as an argument to a resolved project call."""

    qualname: str
    line: int
    col: int
    site: CallSite
    callee: str
    param_index: int
    labels: frozenset[Label]
    gated: bool


@dataclass
class FunctionFlow:
    """Everything taint-observable about one function, in label form."""

    qualname: str
    sinks: list[SinkHit] = dataclass_field(default_factory=list)
    stores: list[FieldStore] = dataclass_field(default_factory=list)
    passes: list[ArgPass] = dataclass_field(default_factory=list)
    returns: frozenset[Label] = frozenset()


@dataclass(frozen=True)
class TaintPath:
    """A resolved finding: a root label reaching a sink, with its chain."""

    hit: SinkHit
    root: Label
    chain: tuple[str, ...]  # human-readable hops, root first


class _FunctionAnalyzer:
    """One forward pass over one function body."""

    def __init__(
        self,
        graph: ProjectGraph,
        fn: FunctionInfo,
        catalog: TaintCatalog,
        summaries: dict[str, frozenset[Label]],
        gating: frozenset[str] = frozenset(),
    ) -> None:
        self.graph = graph
        self.fn = fn
        self.catalog = catalog
        self.summaries = summaries
        self.gating = gating
        self.flow = FunctionFlow(qualname=fn.qualname)
        self.locals: dict[str, frozenset[Label]] = {}
        self.gated = False
        self._sites = graph.call_sites_by_node.get(fn.qualname, {})
        self._returns: set[Label] = set()
        for index, param in enumerate(fn.params):
            self.locals[param] = frozenset({("param", fn.qualname, str(index))})

    # -- entry ---------------------------------------------------------------

    def run(self) -> FunctionFlow:
        node = self.fn.node
        if isinstance(node, ast.Lambda):
            self._returns.update(self._eval(node.body))
        else:
            self._walk_body(node.body)
        self.flow.returns = frozenset(self._returns)
        self._dedupe_events()
        return self.flow

    def _dedupe_events(self) -> None:
        """Loop bodies are walked twice; drop the duplicated events."""
        self.flow.sinks = list(dict.fromkeys(self.flow.sinks))
        self.flow.stores = list(dict.fromkeys(self.flow.stores))
        self.flow.passes = list(dict.fromkeys(self.flow.passes))

    # -- statements ----------------------------------------------------------

    def _walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            labels = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, labels, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            labels = self._eval(stmt.value) | self._eval(stmt.target)
            self._assign(stmt.target, labels, stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                labels = self._eval(stmt.value)
                if labels and not self.gated:
                    self._returns.update(labels)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            # A sanitizer in the *test* gates the fall-through (the
            # ``if not key.verify(...): return`` idiom); one inside a
            # *branch body* must not leak into sibling branches — the
            # branches of an if/elif dispatch chain are alternatives,
            # not a sequence.
            self._eval(stmt.test)
            entry_gated = self.gated
            self._walk_body(stmt.body)
            self.gated = entry_gated
            self._walk_body(stmt.orelse)
            self.gated = entry_gated
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_labels = self._eval(stmt.iter)
            # Two passes for loop-carried taint.
            for _ in range(2):
                self._assign(stmt.target, iter_labels, stmt.iter)
                self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            for _ in range(2):
                self._eval(stmt.test)
                self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, labels, item.context_expr)
            self._walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                self._walk_body(handler.body)
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)
        elif isinstance(stmt, ast.Match):
            subject = self._eval(stmt.subject)
            entry_gated = self.gated
            for case in stmt.cases:
                for name in _pattern_names(case.pattern):
                    self.locals[name] = self.locals.get(name, frozenset()) | subject
                if case.guard is not None:
                    self._eval(case.guard)
                self._walk_body(case.body)
                self.gated = entry_gated
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.locals.pop(target.id, None)
        # FunctionDef / ClassDef / Import / Pass / Global / Nonlocal:
        # nothing to propagate here (nested defs are separate nodes).

    def _assign(
        self, target: ast.expr, labels: frozenset[Label], value: ast.expr | None
    ) -> None:
        if isinstance(target, ast.Name):
            # Strong update: assigning a clean value clears the local.
            self.locals[target.id] = labels
        elif isinstance(target, (ast.Tuple, ast.List)):
            if (
                isinstance(value, (ast.Tuple, ast.List))
                and len(value.elts) == len(target.elts)
            ):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self._assign(sub_target, self._eval(sub_value), sub_value)
            else:
                for sub_target in target.elts:
                    self._assign(sub_target, labels, None)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, labels, None)
        elif isinstance(target, ast.Attribute):
            self._record_field_store(target, labels)
        elif isinstance(target, ast.Subscript):
            # self.X[k] = v taints the field; locals via subscript are
            # treated as whole-container taint on the base name.
            base = target.value
            self._eval(target.slice)
            if isinstance(base, ast.Attribute):
                self._record_field_store(base, labels)
            elif isinstance(base, ast.Name):
                self.locals[base.id] = self.locals.get(base.id, frozenset()) | labels

    def _record_field_store(
        self, target: ast.Attribute, labels: frozenset[Label]
    ) -> None:
        if not labels:
            return
        if (
            isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.fn.cls is not None
        ):
            self.flow.stores.append(
                FieldStore(
                    qualname=self.fn.qualname,
                    line=target.lineno,
                    col=target.col_offset,
                    cls=self.fn.cls,
                    attr=target.attr,
                    labels=labels,
                    gated=self.gated,
                )
            )

    # -- expressions ---------------------------------------------------------

    def _eval(self, node: ast.expr | None) -> frozenset[Label]:
        if node is None:
            return frozenset()
        if isinstance(node, ast.Name):
            return self.locals.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.NamedExpr):
            labels = self._eval(node.value)
            self._assign(node.target, labels, node.value)
            return labels
        if isinstance(node, ast.Lambda):
            return frozenset()  # a closure's body is its own graph node
        if isinstance(
            node,
            (
                ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.Compare, ast.IfExp,
                ast.Tuple, ast.List, ast.Set, ast.Dict, ast.Subscript,
                ast.Starred, ast.JoinedStr, ast.FormattedValue, ast.Await,
                ast.Yield, ast.YieldFrom, ast.Slice,
            ),
        ):
            labels: frozenset[Label] = frozenset()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    labels |= self._eval(child)
            return labels
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            labels = frozenset()
            for comp in node.generators:
                iter_labels = self._eval(comp.iter)
                self._assign(comp.target, iter_labels, None)
                labels |= iter_labels
                for if_expr in comp.ifs:
                    self._eval(if_expr)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    labels |= self._eval(child)
            return labels
        return frozenset()  # constants etc.

    def _eval_attribute(self, node: ast.Attribute) -> frozenset[Label]:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.fn.cls is not None
        ):
            return frozenset({("field", self.fn.cls, node.attr)})
        return self._eval(node.value)

    def _eval_call(self, node: ast.Call) -> frozenset[Label]:
        site = self._sites.get(id(node))
        name = site.name if site is not None else _called_name(node)

        receiver_labels: frozenset[Label] = frozenset()
        if isinstance(node.func, ast.Attribute):
            receiver_labels = self._eval(node.func.value)

        arg_labels: list[frozenset[Label]] = [self._eval(arg) for arg in node.args]
        kw_labels: dict[str, frozenset[Label]] = {
            kw.arg: self._eval(kw.value) for kw in node.keywords if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs expansion
                receiver_labels |= self._eval(kw.value)
        all_labels = receiver_labels.union(*arg_labels, *kw_labels.values())

        # Sanitizer: gates everything from here on; its result is clean.
        if name in self.catalog.sanitizers:
            self.gated = True
            return frozenset()

        # Sink: tainted data consumed by the protected operation.
        sink_kind = self._sink_kind(name, node)
        if sink_kind is not None and all_labels:
            self.flow.sinks.append(
                SinkHit(
                    qualname=self.fn.qualname,
                    line=node.lineno,
                    col=node.col_offset,
                    sink=name,
                    kind=sink_kind,
                    labels=all_labels,
                    gated=self.gated,
                )
            )

        # Mutator on self.X: container insertion taints the field.
        if (
            name in _MUTATORS
            and isinstance(node.func, ast.Attribute)
            and all_labels
        ):
            base = node.func.value
            # Walk e.g. self.proposals.setdefault(r, {}).setdefault(...)
            while isinstance(base, ast.Call) and isinstance(base.func, ast.Attribute):
                base = base.func.value
            if isinstance(base, ast.Attribute):
                self._record_field_store(base, all_labels)
            elif isinstance(base, ast.Name):  # local container insertion
                self.locals[base.id] = (
                    self.locals.get(base.id, frozenset()) | all_labels
                )

        # Interprocedural: record labels flowing into resolved callees.
        result: frozenset[Label] = frozenset()
        if site is not None and site.callees:
            for callee in site.callees:
                callee_fn = self.graph.functions.get(callee)
                if callee_fn is None:
                    continue
                mapped: dict[int, frozenset[Label]] = {}
                for arg_index, labels in enumerate(arg_labels):
                    mapped.setdefault(
                        callee_fn.arg_param_index(arg_index, site.bound), frozenset()
                    )
                    mapped[callee_fn.arg_param_index(arg_index, site.bound)] |= labels
                for kw_name, labels in kw_labels.items():
                    param_index = callee_fn.param_index_of(kw_name)
                    if param_index is not None:
                        mapped.setdefault(param_index, frozenset())
                        mapped[param_index] |= labels
                for param_index, labels in mapped.items():
                    if labels and param_index < len(callee_fn.params):
                        self.flow.passes.append(
                            ArgPass(
                                qualname=self.fn.qualname,
                                line=node.lineno,
                                col=node.col_offset,
                                site=site,
                                callee=callee,
                                param_index=param_index,
                                labels=labels,
                                gated=self.gated,
                            )
                        )
                # Map the callee's return labels into this scope.
                for label in self.summaries.get(callee, frozenset()):
                    if label[0] == "param" and label[1] == callee:
                        index = int(label[2])
                        result |= mapped.get(index, frozenset())
                    else:  # source/field labels are global
                        result |= {label}
        elif site is None or not site.callees:
            # External/unresolved call: conservative pass-through.
            result = all_labels

        # Source: the result is Byzantine input no matter what went in.
        if self._is_source_call(name, site, node):
            result = result | {
                ("source", self.fn.qualname, str(node.lineno), name)
            }
        if site is not None and site.kind == "constructor":
            # The constructed object carries whatever taint went in.
            result = result | all_labels
        # A project function that itself (transitively) verifies also
        # gates: ``if not verify_commit_certificate(...): return`` is a
        # gate even though the sanitizer call sits one frame down.  The
        # taint passed INTO the call was recorded pre-gate above.
        if site is not None and any(callee in self.gating for callee in site.callees):
            self.gated = True
        return result

    def _is_source_call(
        self, name: str, site: CallSite | None, node: ast.Call
    ) -> bool:
        """A deserialization source, not just anything named ``loads``.

        ``json.loads`` of a local keystore file is not network input;
        only calls resolving into the wire/codec modules (or, when
        unresolved, spelled through a catalogued receiver alias) count.
        """
        if name not in self.catalog.source_calls:
            return False
        if site is not None and site.callees:
            if not self.catalog.source_call_paths:
                return True
            return any(
                self.graph.functions[callee].relpath in self.catalog.source_call_paths
                for callee in site.callees
                if callee in self.graph.functions
            )
        if not self.catalog.source_receivers:
            return True
        if isinstance(node.func, ast.Attribute):
            base = node.func.value
            terminal = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None
            )
            return terminal in self.catalog.source_receivers
        return False

    def _sink_kind(self, name: str, node: ast.Call) -> str | None:
        kind = self.catalog.sink_calls.get(name)
        if kind is not None:
            return kind
        if name == "write" and isinstance(node.func, ast.Attribute):
            base = node.func.value
            terminal = None
            if isinstance(base, ast.Attribute):
                terminal = base.attr
            elif isinstance(base, ast.Name):
                terminal = base.id
            if terminal is not None and any(
                fragment in terminal for fragment in self.catalog.sink_write_receivers
            ):
                return "journal write"
        return None


def _called_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return ""


def _pattern_names(pattern: ast.pattern) -> list[str]:
    names: list[str] = []
    for node in ast.walk(pattern):
        if isinstance(node, ast.MatchAs) and node.name is not None:
            names.append(node.name)
        elif isinstance(node, ast.MatchStar) and node.name is not None:
            names.append(node.name)
    return names


class TaintAnalysis:
    """Whole-program fixpoint + closure over the per-function flows."""

    def __init__(self, graph: ProjectGraph, catalog: TaintCatalog) -> None:
        self.graph = graph
        self.catalog = catalog
        self.flows: dict[str, FunctionFlow] = {}
        self.summaries: dict[str, frozenset[Label]] = {}
        self.gating: frozenset[str] = frozenset()
        self.tainted: set[Label] = set()
        self.parents: dict[Label, tuple[Label, str]] = {}

    @classmethod
    def run(cls, graph: ProjectGraph, catalog: TaintCatalog) -> "TaintAnalysis":
        analysis = cls(graph, catalog)
        analysis.gating = analysis._gating_closure()
        analysis._fixpoint()
        analysis._close()
        return analysis

    def _gating_closure(self) -> frozenset[str]:
        """Functions that (transitively) call a catalogued sanitizer."""
        gating: set[str] = set()
        for qualname, fn in self.graph.functions.items():
            nodes = (
                ast.walk(fn.node.body)
                if isinstance(fn.node, ast.Lambda)
                else walk_function_body(fn.node)
            )
            for node in nodes:
                if (
                    isinstance(node, ast.Call)
                    and _called_name(node) in self.catalog.sanitizers
                ):
                    gating.add(qualname)
                    break
        while True:
            added = {
                qualname
                for qualname in self.graph.functions
                if qualname not in gating
                and any(
                    callee in gating
                    for site in self.graph.calls.get(qualname, [])
                    for callee in site.callees
                )
            }
            if not added:
                break
            gating |= added
        return frozenset(gating)

    def _fixpoint(self) -> None:
        for _ in range(_MAX_FIXPOINT_PASSES):
            changed = False
            for qualname, fn in self.graph.functions.items():
                flow = _FunctionAnalyzer(
                    self.graph, fn, self.catalog, self.summaries, self.gating
                ).run()
                self.flows[qualname] = flow
                if self.summaries.get(qualname, frozenset()) != flow.returns:
                    self.summaries[qualname] = flow.returns
                    changed = True
            if not changed:
                break

    def _close(self) -> None:
        """Propagate root labels through ungated passes and stores."""
        edges: dict[Label, list[tuple[Label, str]]] = {}

        def add_edge(src: Label, dst: Label, description: str) -> None:
            edges.setdefault(src, []).append((dst, description))

        for qualname, flow in self.flows.items():
            fn = self.graph.functions[qualname]
            location = f"{fn.relpath}:{{line}} {self._display(fn)}"
            for arg_pass in flow.passes:
                if arg_pass.gated:
                    continue
                callee_fn = self.graph.functions[arg_pass.callee]
                dst: Label = ("param", arg_pass.callee, str(arg_pass.param_index))
                hop = (
                    f"{self._display(fn)} ({fn.relpath}:{arg_pass.line}) passes it to "
                    f"{self._display(callee_fn)}"
                )
                for label in arg_pass.labels:
                    add_edge(label, dst, hop)
            for store in flow.stores:
                if store.gated:
                    continue
                dst = ("field", store.cls, store.attr)
                hop = (
                    f"{self._display(fn)} ({fn.relpath}:{store.line}) stores it in "
                    f"{store.cls}.{store.attr}"
                )
                for label in store.labels:
                    add_edge(label, dst, hop)
            del location

        roots: list[tuple[Label, str]] = []
        for qualname, fn in self.graph.functions.items():
            for index in self.catalog.tainted_params(fn):
                roots.append(
                    (
                        ("param", qualname, str(index)),
                        f"network input enters {self._display(fn)} "
                        f"({fn.relpath}:{fn.line})",
                    )
                )
        for qualname, flow in self.flows.items():
            fn = self.graph.functions[qualname]
            for event in [*flow.sinks, *flow.passes, *flow.stores]:
                for label in event.labels:
                    if label[0] == "source":
                        roots.append(
                            (
                                label,
                                f"deserialized by {label[3]}() in "
                                f"{self._display(fn)} ({fn.relpath}:{label[2]})",
                            )
                        )

        queue: list[Label] = []
        self.root_notes: dict[Label, str] = {}
        for label, note in roots:
            if label not in self.tainted:
                self.tainted.add(label)
                self.root_notes[label] = note
                queue.append(label)
        while queue:
            current = queue.pop()
            for successor, description in edges.get(current, []):
                if successor not in self.tainted:
                    self.tainted.add(successor)
                    self.parents[successor] = (current, description)
                    queue.append(successor)

    def _display(self, fn: FunctionInfo) -> str:
        if not fn.name:
            return "<lambda>"
        return f"{fn.cls}.{fn.name}" if fn.cls else fn.name

    # -- results -------------------------------------------------------------

    def _chain_for(self, label: Label) -> tuple[str, ...]:
        hops: list[str] = []
        current = label
        seen: set[Label] = set()
        while current in self.parents and current not in seen:
            seen.add(current)
            parent, description = self.parents[current]
            hops.append(description)
            current = parent
        if current in self.root_notes:
            hops.append(self.root_notes[current])
        return tuple(reversed(hops))

    def _pick_label(self, labels: frozenset[Label]) -> Label | None:
        tainted = [label for label in labels if label in self.tainted]
        if not tainted:
            return None
        # Prefer the label with the shortest chain — clearest diagnosis.
        return min(tainted, key=lambda lb: (len(self._chain_for(lb)), lb))

    def sink_findings(self) -> list[TaintPath]:
        """Ungated sink hits actually reachable from a taint root."""
        findings: list[TaintPath] = []
        for flow in self.flows.values():
            for hit in flow.sinks:
                if hit.gated:
                    continue
                label = self._pick_label(hit.labels)
                if label is not None:
                    findings.append(
                        TaintPath(hit=hit, root=label, chain=self._chain_for(label))
                    )
        return findings

    def store_findings(self, fields: set[tuple[str, str]]) -> list[TaintPath]:
        """Ungated tainted stores into the given (class, attr) fields."""
        findings: list[TaintPath] = []
        for flow in self.flows.values():
            for store in flow.stores:
                if store.gated or (store.cls, store.attr) not in fields:
                    continue
                label = self._pick_label(store.labels)
                if label is not None:
                    hit = SinkHit(
                        qualname=store.qualname,
                        line=store.line,
                        col=store.col,
                        sink=store.attr,
                        kind="quorum-set insertion",
                        labels=store.labels,
                        gated=store.gated,
                    )
                    findings.append(
                        TaintPath(hit=hit, root=label, chain=self._chain_for(label))
                    )
        return findings
