"""Whole-program view: module import graph + call graph over ``src/repro``.

The per-file rules (RL001-RL005) see one AST at a time; the taint rules
(RL006/RL007) need to follow a value that is deserialized in
``net/transport.py``, threaded through ``core/``, and executed in
``smr/`` — which requires knowing, for every call expression, *which
project function(s) it may invoke*.  :class:`ProjectGraph` builds that
map from the already-parsed :class:`~repro.analysis.source.SourceFile`
list, with no imports executed (pure ``ast``, like the rest of the
linter).

Resolution strategy, from precise to conservative:

* **bare names** — nested ``def``s in the enclosing function, then
  module-level functions, then ``from X import f`` aliases, then class
  names (a constructor call edges to ``__init__``);
* **module attributes** (``codec.loads``) — via the import alias table;
* **``self.`` methods** — looked up on the enclosing class, then its
  bases (resolved by name across the project);
* **typed fields** (``self.abc.submit``) — via light field-type
  inference: ``self.x = ClassName(...)`` in ``__init__``/class body, or
  ``self.x = param`` where the parameter is annotated with a project
  class;
* **everything else** (``backend.send``, ``node.on_message`` — the
  ``NetworkBackend``/``Rule``-style dispatch) — *duck-typed*: the call
  may invoke **every** project method of that name, plus every
  lambda/function the project ever assigns to an attribute of that name
  (``self.abc.on_deliver = lambda ...``) or passes as a keyword of that
  name (``ctx.spawn(..., on_output=lambda ...)``).  Over-approximate by
  design: a missed edge hides a taint path, a spurious edge merely adds
  work.

Lambdas and nested ``def``s are first-class graph nodes; *defining* one
inside a function adds a containment edge (a closure that is created is
conservatively assumed to eventually run).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .source import SourceFile

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
    "walk_function_body",
]

# Attribute names that are overwhelmingly builtin container/str methods;
# duck-typed dispatch on these would wire huge spurious fan-out through
# every dict in the codebase, so they never resolve by duck typing.
# (They still resolve precisely when the receiver's type is known.)
_DUCK_DENYLIST = frozenset(
    {
        "get", "items", "keys", "values", "pop", "popitem", "setdefault",
        "update", "append", "extend", "insert", "remove", "discard", "add",
        "clear", "copy", "sort", "reverse", "count", "index", "join",
        "split", "rsplit", "strip", "lstrip", "rstrip", "startswith",
        "endswith", "format", "replace", "encode", "lower", "upper",
        "to_bytes", "from_bytes", "hexdigest", "digest", "bit_length",
    }
)

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda


@dataclass
class FunctionInfo:
    """One project function, method, nested def or lambda."""

    qualname: str  # "core/x.py::Cls.meth", "core/x.py::fn", "core/x.py::fn.<lambda>@12"
    relpath: str
    name: str  # the name a call expression uses ("" for lambdas)
    node: _FunctionNode
    cls: str | None = None  # enclosing class name, if a method
    params: tuple[str, ...] = ()
    line: int = 0
    is_static: bool = False
    is_classmethod: bool = False

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    def arg_param_index(self, arg_index: int, bound: bool) -> int:
        """Map a call-site positional argument to a parameter index.

        ``bound`` is True for instance-style calls (``obj.meth(a)``)
        where the receiver fills the first parameter slot.
        """
        if self.is_classmethod:
            return arg_index + 1
        if self.cls is not None and not self.is_static and bound:
            return arg_index + 1
        return arg_index

    def param_index_of(self, name: str) -> int | None:
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass
class ClassInfo:
    """One project class: methods, bases, dataclass-ness, field types."""

    name: str
    relpath: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = field(default_factory=dict)  # name -> qualname
    is_dataclass: bool = False
    # field name -> project class name, from __init__ assignments.
    field_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One module: its source plus resolved import tables."""

    relpath: str
    source: SourceFile
    # local alias -> module relpath ("from .. import codec" / "import x.y as z")
    module_aliases: dict[str, str] = field(default_factory=dict)
    # local name -> ("relpath", "symbol") for "from X import f"
    symbol_aliases: dict[str, tuple[str, str]] = field(default_factory=dict)
    functions: dict[str, str] = field(default_factory=dict)  # name -> qualname
    classes: dict[str, str] = field(default_factory=dict)  # name -> class name (local)


@dataclass(frozen=True)
class CallSite:
    """One call expression with its resolved callee candidates."""

    caller: str  # qualname
    line: int
    col: int
    name: str  # the called name as written ("loads", "verify", ...)
    callees: tuple[str, ...]  # candidate qualnames (empty: external/unresolved)
    kind: str  # "local" | "import" | "method" | "constructor" | "duck" | "external"
    bound: bool = False  # instance-style call: receiver fills the self slot


def walk_function_body(node: _FunctionNode) -> Iterator[ast.AST]:
    """Yield every AST node of a function *excluding* nested function
    bodies (nested defs/lambdas are separate graph nodes)."""
    stack: list[ast.AST] = (
        list(node.body) if not isinstance(node, ast.Lambda) else [node.body]
    )
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # Yield the def itself (callers may want it) but do not
                # descend: its body belongs to its own graph node.
                yield child
                continue
            stack.append(child)


def _positional_params(node: _FunctionNode) -> tuple[str, ...]:
    args = node.args
    return tuple(a.arg for a in [*args.posonlyargs, *args.args])


def _relpath_to_dotted(relpath: str) -> str:
    dotted = relpath[:-3] if relpath.endswith(".py") else relpath
    if dotted.endswith("/__init__"):
        dotted = dotted[: -len("/__init__")]
    return dotted.replace("/", ".")


def _annotation_name(annotation: ast.expr | None) -> str | None:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotation: "StateMachine" or "repro.x.StateMachine".
        return annotation.value.split("[")[0].split(".")[-1].strip("'\" ")
    return None


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return True
    return False


class ProjectGraph:
    """The whole-program index: modules, functions, classes, call edges."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, list[ClassInfo]] = {}  # by class name
        self.methods_by_name: dict[str, list[str]] = {}  # method name -> qualnames
        # attribute/keyword name -> function qualnames ever bound to it
        self.callback_targets: dict[str, list[str]] = {}
        self.import_graph: dict[str, set[str]] = {}
        self.calls: dict[str, list[CallSite]] = {}  # caller qualname -> sites
        # caller qualname -> id(ast.Call) -> CallSite, for AST-walking clients
        self.call_sites_by_node: dict[str, dict[int, CallSite]] = {}
        self.contains: dict[str, list[str]] = {}  # fn -> nested fns/lambdas

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, sources: list[SourceFile]) -> "ProjectGraph":
        graph = cls()
        by_dotted: dict[str, str] = {}
        for source in sources:
            graph.modules[source.relpath] = ModuleInfo(source.relpath, source)
            by_dotted[_relpath_to_dotted(source.relpath)] = source.relpath
        for module in graph.modules.values():
            graph._index_module(module)
        for module in graph.modules.values():
            graph._resolve_imports(module, by_dotted)
        for module in graph.modules.values():
            graph._infer_field_types(module)
            graph._collect_callbacks(module)
        for qualname in list(graph.functions):
            graph._build_calls(qualname)
        return graph

    def _index_module(self, module: ModuleInfo) -> None:
        relpath = module.relpath
        for node in module.source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node, cls=None, prefix="")
            elif isinstance(node, ast.ClassDef):
                info = ClassInfo(
                    name=node.name,
                    relpath=relpath,
                    node=node,
                    bases=tuple(
                        b.id if isinstance(b, ast.Name) else b.attr
                        for b in node.bases
                        if isinstance(b, (ast.Name, ast.Attribute))
                    ),
                    is_dataclass=_is_dataclass_decorated(node),
                )
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = self._add_function(module, item, cls=node.name, prefix="")
                        info.methods[item.name] = fn.qualname
                self.classes.setdefault(node.name, []).append(info)
                module.classes[node.name] = node.name

    def _add_function(
        self,
        module: ModuleInfo,
        node: _FunctionNode,
        cls: str | None,
        prefix: str,
    ) -> FunctionInfo:
        if isinstance(node, ast.Lambda):
            name = ""
            qualname = f"{module.relpath}::{prefix}<lambda>@{node.lineno}:{node.col_offset}"
        else:
            name = node.name
            base = f"{cls}.{node.name}" if cls else node.name
            qualname = f"{module.relpath}::{prefix}{base}"
        deco_names = set()
        if not isinstance(node, ast.Lambda):
            for deco in node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                if isinstance(target, ast.Name):
                    deco_names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    deco_names.add(target.attr)
        info = FunctionInfo(
            qualname=qualname,
            relpath=module.relpath,
            name=name,
            node=node,
            cls=cls,
            params=_positional_params(node),
            line=node.lineno,
            is_static="staticmethod" in deco_names,
            is_classmethod="classmethod" in deco_names,
        )
        self.functions[qualname] = info
        if cls is not None and name:
            self.methods_by_name.setdefault(name, []).append(qualname)
        if cls is None and name and not prefix:
            module.functions.setdefault(name, qualname)
        # Register nested defs and lambdas as their own nodes.
        nested_prefix = (
            f"{prefix}{cls + '.' if cls else ''}{name or '<lambda>'}."
        )
        for child in walk_function_body(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                nested = self._add_function(module, child, cls=None, prefix=nested_prefix)
                self.contains.setdefault(qualname, []).append(nested.qualname)
        return info

    def _resolve_imports(self, module: ModuleInfo, by_dotted: dict[str, str]) -> None:
        deps = self.import_graph.setdefault(module.relpath, set())

        def target_relpath(dotted: str) -> str | None:
            dotted = dotted.removeprefix("repro.").removeprefix("repro")
            if not dotted:
                return None
            if dotted in by_dotted:
                return by_dotted[dotted]
            return None

        package_parts = module.relpath.split("/")[:-1]
        for node in ast.walk(module.source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    rel = target_relpath(alias.name)
                    if rel is not None:
                        module.module_aliases[alias.asname or alias.name.split(".")[-1]] = rel
                        deps.add(rel)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = package_parts[: len(package_parts) - (node.level - 1)]
                    dotted = ".".join([*base, node.module] if node.module else base)
                else:
                    dotted = node.module or ""
                    dotted = dotted.removeprefix("repro.")
                for alias in node.names:
                    local = alias.asname or alias.name
                    # "from . import codec": the imported name is a module.
                    as_module = target_relpath(f"{dotted}.{alias.name}" if dotted else alias.name)
                    if as_module is not None:
                        module.module_aliases[local] = as_module
                        deps.add(as_module)
                        continue
                    rel = target_relpath(dotted)
                    if rel is not None:
                        module.symbol_aliases[local] = (rel, alias.name)
                        deps.add(rel)

    def _infer_field_types(self, module: ModuleInfo) -> None:
        for infos in self.classes.values():
            for info in infos:
                if info.relpath != module.relpath:
                    continue
                init = info.methods.get("__init__")
                scan: list[ast.AST] = list(info.node.body)
                if init is not None:
                    fn = self.functions[init].node
                    if not isinstance(fn, ast.Lambda):
                        scan.extend(fn.body)
                        annotations = {
                            a.arg: _annotation_name(a.annotation)
                            for a in [*fn.args.posonlyargs, *fn.args.args]
                        }
                    else:  # pragma: no cover - __init__ is never a lambda
                        annotations = {}
                else:
                    annotations = {}
                for stmt in scan:
                    targets: list[ast.expr] = []
                    value: ast.expr | None = None
                    if isinstance(stmt, ast.Assign):
                        targets, value = stmt.targets, stmt.value
                    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                        targets, value = [stmt.target], stmt.value
                    for target in targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        typename: str | None = None
                        if isinstance(value, ast.Call):
                            fname = value.func
                            if isinstance(fname, ast.Name) and fname.id in self.classes:
                                typename = fname.id
                            elif (
                                isinstance(fname, ast.Attribute)
                                and fname.attr in self.classes
                            ):
                                typename = fname.attr
                        elif isinstance(value, ast.Name):
                            candidate = annotations.get(value.id)
                            if candidate in self.classes:
                                typename = candidate
                        if typename is not None:
                            info.field_types.setdefault(target.attr, typename)

    def _collect_callbacks(self, module: ModuleInfo) -> None:
        """Record ``<expr>.name = <callable>`` and ``f(..., name=<callable>)``."""

        def callable_qualnames(value: ast.expr, scope: FunctionInfo | None) -> list[str]:
            if isinstance(value, ast.Lambda):
                found = [
                    q
                    for q, fn in self.functions.items()
                    if fn.node is value
                ]
                return found
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and scope is not None
                and scope.cls is not None
            ):
                resolved = self._lookup_method(scope.cls, value.attr)
                return [resolved] if resolved else []
            if isinstance(value, ast.Name):
                qual = module.functions.get(value.id)
                return [qual] if qual else []
            return []

        for qualname, fn in list(self.functions.items()):
            if fn.relpath != module.relpath:
                continue
            for node in walk_function_body(fn.node):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Attribute):
                            for qual in callable_qualnames(node.value, fn):
                                self.callback_targets.setdefault(
                                    target.attr, []
                                ).append(qual)
                elif isinstance(node, ast.Call):
                    for kw in node.keywords:
                        if kw.arg is None:
                            continue
                        for qual in callable_qualnames(kw.value, fn):
                            self.callback_targets.setdefault(kw.arg, []).append(qual)

    # -- resolution ----------------------------------------------------------

    def _lookup_method(self, class_name: str, method: str) -> str | None:
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            for info in self.classes.get(current, []):
                if method in info.methods:
                    return info.methods[method]
                queue.extend(info.bases)
        return None

    def _class_of_field(self, class_name: str, fieldname: str) -> str | None:
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            for info in self.classes.get(current, []):
                if fieldname in info.field_types:
                    return info.field_types[fieldname]
                queue.extend(info.bases)
        return None

    def resolve_class(self, module: ModuleInfo, name: str) -> str | None:
        """A class name visible in ``module`` (local, imported, or global)."""
        if name in module.classes:
            return name
        alias = module.symbol_aliases.get(name)
        if alias is not None:
            target_module, symbol = alias
            target = self.modules.get(target_module)
            if target is not None and symbol in target.classes:
                return symbol
        if name in self.classes:
            return name
        return None

    def _resolve_call(
        self, fn: FunctionInfo, call: ast.Call, locals_: dict[str, str]
    ) -> tuple[str, tuple[str, ...], str, bool]:
        """Return (called name, candidate qualnames, kind, bound)."""
        module = self.modules[fn.relpath]
        func = call.func

        if isinstance(func, ast.Name):
            name = func.id
            if name in locals_:  # nested def in enclosing scope
                return name, (locals_[name],), "local", False
            if name in module.functions:
                return name, (module.functions[name],), "local", False
            alias = module.symbol_aliases.get(name)
            if alias is not None:
                target_module, symbol = alias
                target = self.modules.get(target_module)
                if target is not None and symbol in target.functions:
                    return name, (target.functions[symbol],), "import", False
            cls_name = self.resolve_class(module, name)
            if cls_name is not None:
                init = self._lookup_method(cls_name, "__init__")
                return name, ((init,) if init else ()), "constructor", True
            return name, (), "external", False

        if isinstance(func, ast.Attribute):
            attr = func.attr
            receiver = func.value
            # self.method(...)
            if (
                isinstance(receiver, ast.Name)
                and receiver.id == "self"
                and fn.cls is not None
            ):
                resolved = self._lookup_method(fn.cls, attr)
                if resolved is not None:
                    return attr, (resolved,), "method", True
            # module_alias.func(...)
            if isinstance(receiver, ast.Name):
                target_rel = module.module_aliases.get(receiver.id)
                if target_rel is not None:
                    target = self.modules[target_rel]
                    if attr in target.functions:
                        return attr, (target.functions[attr],), "import", False
                    if attr in target.classes:
                        init = self._lookup_method(attr, "__init__")
                        return attr, ((init,) if init else ()), "constructor", True
                # ClassName.method(...) — classmethod/static style.
                cls_name = self.resolve_class(module, receiver.id)
                if cls_name is not None:
                    resolved = self._lookup_method(cls_name, attr)
                    if resolved is not None:
                        return attr, (resolved,), "method", False
            # self.field.method(...) via inferred field types.
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and fn.cls is not None
            ):
                field_cls = self._class_of_field(fn.cls, receiver.attr)
                if field_cls is not None:
                    resolved = self._lookup_method(field_cls, attr)
                    if resolved is not None:
                        return attr, (resolved,), "method", True
            # Duck-typed dispatch: every project method of this name plus
            # every callback ever bound to an attribute of this name.
            if attr in _DUCK_DENYLIST:
                return attr, (), "external", True
            candidates = list(self.methods_by_name.get(attr, []))
            candidates.extend(self.callback_targets.get(attr, []))
            if candidates:
                return attr, tuple(dict.fromkeys(candidates)), "duck", True
            return attr, (), "external", True

        return "", (), "external", False

    def _build_calls(self, qualname: str) -> None:
        fn = self.functions[qualname]
        locals_: dict[str, str] = {}
        for nested in self.contains.get(qualname, []):
            nested_fn = self.functions[nested]
            if nested_fn.name:
                locals_[nested_fn.name] = nested
        sites: list[CallSite] = []
        by_node: dict[int, CallSite] = {}
        for node in walk_function_body(fn.node):
            if isinstance(node, ast.Call):
                name, callees, kind, bound = self._resolve_call(fn, node, locals_)
                site = CallSite(
                    caller=qualname,
                    line=node.lineno,
                    col=node.col_offset,
                    name=name,
                    callees=callees,
                    kind=kind,
                    bound=bound,
                )
                sites.append(site)
                by_node[id(node)] = site
        self.calls[qualname] = sites
        self.call_sites_by_node[qualname] = by_node

    # -- queries -------------------------------------------------------------

    def callees_of(self, qualname: str) -> set[str]:
        """Direct successors: resolved call targets plus contained closures."""
        out: set[str] = set()
        for site in self.calls.get(qualname, []):
            out.update(site.callees)
        out.update(self.contains.get(qualname, []))
        return out

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Transitive closure over calls + closure containment."""
        seen: set[str] = set()
        queue = [r for r in roots if r in self.functions]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(q for q in self.callees_of(current) if q not in seen)
        return seen
