"""Structured diagnostics emitted by the ``repro lint`` checkers.

Every finding carries enough context to be actionable (file, line,
column, rule id, severity, message, fix hint) and enough identity to be
tracked across commits (a *fingerprint* built from the rule, the
package-relative path and the normalized source line — stable under
unrelated edits that merely shift line numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Severity", "Diagnostic"]


class Severity:
    """Diagnostic severities, ordered from most to least important."""

    ERROR = "error"
    WARNING = "warning"

    ORDER = (ERROR, WARNING)


@dataclass(frozen=True)
class Diagnostic:
    """One finding from one rule at one location."""

    rule: str  # "RL001" .. "RL005"
    path: str  # package-relative, e.g. "core/binary_agreement.py"
    line: int  # 1-based
    col: int  # 0-based, as in the ast module
    message: str
    severity: str = Severity.ERROR
    hint: str = ""
    code: str = field(default="", compare=False)  # stripped source line

    def fingerprint(self) -> tuple[str, str, str]:
        """Identity used for baseline matching (line numbers excluded)."""
        return (self.rule, self.path, self.code)

    def format_text(self) -> str:
        text = f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.severity}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
            "code": self.code,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (used by the lint result cache)."""
        return cls(
            rule=data["rule"],
            path=data["path"],
            line=data["line"],
            col=data["col"],
            message=data["message"],
            severity=data["severity"],
            hint=data["hint"],
            code=data["code"],
        )

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)
