"""Concurrency-effect summaries over the project call graph.

PR 6 made the stack genuinely concurrent (pipelined atomic-broadcast
rounds, an asyncio TCP transport, open-loop clients), which introduces
the one failure mode the sequential rules RL001-RL007 cannot see: an
``await`` suspends the coroutine, other tasks run, and shared state —
``self.*`` attributes, typed-field attributes (``self.net._closed``),
module globals — may change underneath a value that was read before the
suspension.  An honest replica that writes state derived from such a
stale read corrupts itself without any Byzantine help, collapsing the
paper's trust argument from the inside.

This module computes, for every function in the
:class:`~repro.analysis.project.ProjectGraph`, an
:class:`EffectSummary` to fixpoint over the call graph:

* the set of shared *cells* (``(owner, attribute)`` pairs) the function
  reads and writes, directly and transitively;
* whether it contains a suspension point (``await`` / ``async for`` /
  ``async with``), directly or transitively through called coroutines;
* which cells its *return value* may carry (so ``v = self._snapshot()``
  counts as a read of whatever ``_snapshot`` reads), and which cells it
  writes *from each parameter* (so ``self._store(v)`` counts as a write
  of whatever ``_store`` writes from that argument) — the two halves of
  interprocedural coverage for sync helpers called from async context;
* and, per async function, the read → await → dependent-write spans
  (:class:`StaleWriteHazard`) that RL008 reports.

Like :mod:`repro.analysis.dataflow`, everything here is pure ``ast``
over already-parsed sources; nothing is imported or executed.
Interprocedural propagation follows only precisely-resolved edges
(``local`` / ``import`` / ``method`` / ``constructor``) — duck-typed
fan-out would wire every ``send`` in the codebase together and drown
the rules in noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .project import FunctionInfo, ProjectGraph, walk_function_body

__all__ = [
    "Cell",
    "EffectAnalysis",
    "EffectSummary",
    "StaleWriteHazard",
    "format_cell",
]

# A shared mutable location: ("ClassName", "attr") for instance state,
# ("module:<relpath>", "name") for a module global declared `global`.
Cell = tuple[str, str]

_MAX_FIXPOINT_PASSES = 10

# Effect propagation follows only precisely-resolved call edges.
_PRECISE_KINDS = frozenset({"local", "import", "method", "constructor"})

# Container methods that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "discard", "add", "clear",
        "update", "pop", "popitem", "setdefault", "popleft", "appendleft",
        "sort", "reverse",
    }
)

_FN_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def format_cell(cell: Cell) -> str:
    owner, attr = cell
    if owner.startswith("module:"):
        return f"{owner.removeprefix('module:')}::{attr}"
    return f"{owner}.{attr}"


@dataclass
class EffectSummary:
    """Per-function effects; ``all_*`` fields close over the call graph."""

    qualname: str
    relpath: str
    is_async: bool
    suspends: bool  # direct await / async for / async with in the body
    reads: set[Cell] = field(default_factory=set)
    writes: set[Cell] = field(default_factory=set)
    # Cells the return value may carry (direct + via returned calls).
    return_cells: set[Cell] = field(default_factory=set)
    # param index -> cells written with values derived from that param.
    param_writes: dict[int, set[Cell]] = field(default_factory=dict)
    # Closed over callees during the fixpoint.
    transitively_suspends: bool = False
    all_reads: set[Cell] = field(default_factory=set)
    all_writes: set[Cell] = field(default_factory=set)
    # Propagation edges consumed by the fixpoint.
    _return_callees: set[str] = field(default_factory=set)
    _param_forwards: set[tuple[int, str, int]] = field(default_factory=set)


@dataclass(frozen=True)
class StaleWriteHazard:
    """One read → await → dependent-write span in an async function.

    ``kind`` distinguishes the three shapes RL008 reports:

    * ``"write"`` — a cell is read, the coroutine suspends, and the
      same cell is written back from the pre-suspension value (the
      classic lost-update);
    * ``"helper"`` — the post-suspension write happens inside a sync
      helper that receives the stale value as an argument;
    * ``"alias"`` — an object *obtained from* a cell before the
      suspension is mutated after it (the container may have been
      replaced mid-await, orphaning the alias).
    """

    qualname: str
    relpath: str
    cell: Cell
    read_line: int
    suspend_line: int
    write_line: int
    write_col: int
    kind: str  # "write" | "helper" | "alias"
    detail: str = ""


def _walk_expr(expr: ast.expr):
    """Every node of an expression, skipping nested lambda bodies."""
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Lambda):
                yield child
                continue
            stack.append(child)


def _first_await(node: ast.AST) -> ast.Await | None:
    """The positionally first ``await`` in a statement/expression."""
    best: ast.Await | None = None
    for sub in ast.walk(node):
        if isinstance(sub, _FN_NODES):
            continue
        if isinstance(sub, ast.Await):
            if best is None or (sub.lineno, sub.col_offset) < (
                best.lineno,
                best.col_offset,
            ):
                best = sub
    return best


class _CellResolver:
    """Map attribute expressions to cells for one function."""

    def __init__(self, graph: ProjectGraph, fn: FunctionInfo) -> None:
        self.graph = graph
        self.fn = fn
        self.globals: set[str] = set()
        if not isinstance(fn.node, ast.Lambda):
            for node in walk_function_body(fn.node):
                if isinstance(node, ast.Global):
                    self.globals.update(node.names)

    def cell_of(self, node: ast.expr) -> Cell | None:
        if isinstance(node, ast.Name):
            if node.id in self.globals:
                return (f"module:{self.fn.relpath}", node.id)
            return None
        if not isinstance(node, ast.Attribute):
            return None
        base = node.value
        if isinstance(base, ast.Name):
            if base.id == "self" and self.fn.cls is not None:
                return (self.fn.cls, node.attr)
            return None
        # self.field.attr through the graph's light field-type inference.
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and self.fn.cls is not None
        ):
            field_cls = self.graph._class_of_field(self.fn.cls, base.attr)
            if field_cls is not None:
                return (field_cls, node.attr)
        return None

    def cells_in(self, expr: ast.expr) -> list[tuple[Cell, ast.expr]]:
        # A call's func attribute is a bound-method access, not a state
        # read (`self._read_frame(...)` does not read a `_read_frame`
        # cell) — but the method's *receiver* still counts
        # (`self.channel_keys.get(...)` reads `channel_keys`).
        method_attrs = {
            id(node.func)
            for node in _walk_expr(expr)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
        }
        found: list[tuple[Cell, ast.expr]] = []
        for node in _walk_expr(expr):
            if id(node) in method_attrs:
                continue
            if isinstance(node, (ast.Attribute, ast.Name)) and isinstance(
                getattr(node, "ctx", ast.Load()), ast.Load
            ):
                cell = self.cell_of(node)
                if cell is not None:
                    found.append((cell, node))
        return found


def _summarize(graph: ProjectGraph, fn: FunctionInfo) -> EffectSummary:
    """The direct (intraprocedural) half of one function's summary."""
    node = fn.node
    is_async = isinstance(node, ast.AsyncFunctionDef)
    resolver = _CellResolver(graph, fn)
    summary = EffectSummary(
        qualname=fn.qualname,
        relpath=fn.relpath,
        is_async=is_async,
        suspends=False,
    )
    body = list(walk_function_body(node))
    for sub in body:
        if isinstance(sub, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            summary.suspends = True
            break

    params = set(fn.params)
    sites = graph.call_sites_by_node.get(fn.qualname, {})

    # Local derivation, two passes so loops converge: which cells and
    # which of our own params does each local carry, and which calls'
    # return values flowed into it.
    local_cells: dict[str, set[Cell]] = {}
    local_params: dict[str, set[int]] = {}
    local_calls: dict[str, set[str]] = {}

    def value_info(expr: ast.expr) -> tuple[set[Cell], set[int], set[str]]:
        cells: set[Cell] = set()
        pidx: set[int] = set()
        callees: set[str] = set()
        for sub in _walk_expr(expr):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id in params:
                    idx = fn.param_index_of(sub.id)
                    if idx is not None:
                        pidx.add(idx)
                cells.update(local_cells.get(sub.id, ()))
                pidx.update(local_params.get(sub.id, ()))
                callees.update(local_calls.get(sub.id, ()))
            elif isinstance(sub, ast.Call):
                site = sites.get(id(sub))
                if site is not None and site.kind in _PRECISE_KINDS:
                    callees.update(site.callees)
        for cell, _ in resolver.cells_in(expr):
            cells.add(cell)
        return cells, pidx, callees

    def bind(target: ast.expr, cells: set[Cell], pidx: set[int], callees: set[str]) -> None:
        if isinstance(target, ast.Name):
            local_cells[target.id] = set(cells)
            local_params[target.id] = set(pidx)
            local_calls[target.id] = set(callees)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind(elt, cells, pidx, callees)

    for _ in range(2):
        for sub in body:
            if isinstance(sub, ast.Assign):
                info = value_info(sub.value)
                for target in sub.targets:
                    bind(target, *info)
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                bind(sub.target, *value_info(sub.value))
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                bind(sub.target, *value_info(sub.iter))
            elif isinstance(sub, ast.AugAssign) and isinstance(sub.target, ast.Name):
                cells, pidx, callees = value_info(sub.value)
                local_cells.setdefault(sub.target.id, set()).update(cells)
                local_params.setdefault(sub.target.id, set()).update(pidx)
                local_calls.setdefault(sub.target.id, set()).update(callees)

    def record_write(cell: Cell, value_exprs: list[ast.expr]) -> None:
        summary.writes.add(cell)
        for expr in value_exprs:
            _, pidx, _ = value_info(expr)
            for idx in pidx:
                summary.param_writes.setdefault(idx, set()).add(cell)

    for sub in body:
        # Reads: every cell mentioned anywhere in a load position.
        if isinstance(sub, (ast.Attribute, ast.Name)) and isinstance(
            getattr(sub, "ctx", None), ast.Load
        ):
            cell = resolver.cell_of(sub)
            if cell is not None:
                summary.reads.add(cell)
        # Writes: attribute/subscript stores, augassigns, deletes.
        if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            values = [sub.value] if sub.value is not None else []
            for target in targets:
                cell = resolver.cell_of(target) if isinstance(
                    target, (ast.Attribute, ast.Name)
                ) else None
                if cell is None and isinstance(target, ast.Subscript):
                    cell = resolver.cell_of(target.value)
                if cell is not None:
                    record_write(cell, values)
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                if isinstance(target, ast.Subscript):
                    cell = resolver.cell_of(target.value)
                    if cell is not None:
                        summary.writes.add(cell)
        elif isinstance(sub, ast.Call):
            # In-place mutators on a cell receiver are writes.
            if isinstance(sub.func, ast.Attribute) and sub.func.attr in _MUTATORS:
                cell = resolver.cell_of(sub.func.value)
                if cell is not None:
                    record_write(cell, list(sub.args) + [kw.value for kw in sub.keywords])
            # Forward our params into precisely-resolved callees.
            site = sites.get(id(sub))
            if site is not None and site.kind in _PRECISE_KINDS:
                for callee_qual in site.callees:
                    callee = graph.functions.get(callee_qual)
                    if callee is None:
                        continue
                    for j, arg in enumerate(sub.args):
                        _, pidx, _ = value_info(arg)
                        tgt = callee.arg_param_index(j, site.bound)
                        for idx in pidx:
                            summary._param_forwards.add((idx, callee_qual, tgt))
                    for kw in sub.keywords:
                        if kw.arg is None:
                            continue
                        tgt_idx = callee.param_index_of(kw.arg)
                        if tgt_idx is None:
                            continue
                        _, pidx, _ = value_info(kw.value)
                        for idx in pidx:
                            summary._param_forwards.add((idx, callee_qual, tgt_idx))
        elif isinstance(sub, ast.Return) and sub.value is not None:
            cells, _, callees = value_info(sub.value)
            summary.return_cells.update(cells)
            summary._return_callees.update(callees)

    summary.all_reads = set(summary.reads)
    summary.all_writes = set(summary.writes)
    return summary


class EffectAnalysis:
    """Effect summaries for every project function, closed to fixpoint."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self.summaries: dict[str, EffectSummary] = {}

    @classmethod
    def run(cls, graph: ProjectGraph) -> "EffectAnalysis":
        analysis = cls(graph)
        for qualname, fn in graph.functions.items():
            analysis.summaries[qualname] = _summarize(graph, fn)
        analysis._fixpoint()
        return analysis

    def _precise_callees(self, qualname: str) -> set[str]:
        out: set[str] = set()
        for site in self.graph.calls.get(qualname, []):
            if site.kind in _PRECISE_KINDS:
                out.update(site.callees)
        out.update(self.graph.contains.get(qualname, []))
        return out

    def _fixpoint(self) -> None:
        for _ in range(_MAX_FIXPOINT_PASSES):
            changed = False
            for qualname, summary in self.summaries.items():
                for callee_qual in self._precise_callees(qualname):
                    callee = self.summaries.get(callee_qual)
                    if callee is None:
                        continue
                    if not summary.all_reads >= callee.all_reads:
                        summary.all_reads |= callee.all_reads
                        changed = True
                    if not summary.all_writes >= callee.all_writes:
                        summary.all_writes |= callee.all_writes
                        changed = True
                    if (
                        callee.suspends or callee.transitively_suspends
                    ) and not summary.transitively_suspends:
                        summary.transitively_suspends = True
                        changed = True
                for callee_qual in summary._return_callees:
                    callee = self.summaries.get(callee_qual)
                    if callee is None:
                        continue
                    if not summary.return_cells >= callee.return_cells:
                        summary.return_cells |= callee.return_cells
                        changed = True
                for own_idx, callee_qual, callee_idx in summary._param_forwards:
                    callee = self.summaries.get(callee_qual)
                    if callee is None:
                        continue
                    incoming = callee.param_writes.get(callee_idx, set())
                    mine = summary.param_writes.setdefault(own_idx, set())
                    if not mine >= incoming:
                        mine |= incoming
                        changed = True
            if not changed:
                break

    # -- hazard extraction ---------------------------------------------------

    def stale_write_hazards(self) -> list[StaleWriteHazard]:
        """Read → await → dependent-write spans across every async
        function (including async closures registered as graph nodes)."""
        hazards: list[StaleWriteHazard] = []
        for qualname, fn in self.graph.functions.items():
            if not isinstance(fn.node, ast.AsyncFunctionDef):
                continue
            scanner = _StaleScanner(self, fn)
            scanner.scan()
            hazards.extend(scanner.hazards)
        hazards.sort(key=lambda h: (h.relpath, h.write_line, h.write_col, h.cell))
        return hazards


@dataclass
class _Capture:
    """One shared-cell value held by a local variable."""

    cell: Cell
    read_line: int
    stale: bool = False  # a suspension happened while the capture was live
    suspend_line: int = 0
    # True when the local was bound by a *direct* container access on
    # the cell (`self._inbound.get(peer)`, `self._inbound[peer]`,
    # `self._inbound`) so mutating the local mutates an object the cell
    # may no longer reference.  Values merely derived from the cell
    # (arithmetic, helper returns) are not aliases.
    alias: bool = False


class _StaleScanner:
    """Statement-ordered walk of one async function.

    Tracks which locals carry values read from shared cells, marks every
    live capture *stale* at each suspension point, clears per-cell
    validation at each suspension, and reports dependent writes of stale
    values.  ``if``/``else`` branches are walked separately and merged
    (captures union, staleness OR, validations intersect); branches that
    terminate (return/raise/continue/break) are excluded from the merge,
    so the ``if cached != self.x: return`` re-check idiom validates the
    fall-through path.  Loop bodies are walked twice so a capture from
    iteration *k* meets the suspension and write of iteration *k + 1*.
    """

    def __init__(self, analysis: EffectAnalysis, fn: FunctionInfo) -> None:
        self.analysis = analysis
        self.graph = analysis.graph
        self.fn = fn
        self.resolver = _CellResolver(analysis.graph, fn)
        self.sites = analysis.graph.call_sites_by_node.get(fn.qualname, {})
        self.captures: dict[str, dict[Cell, _Capture]] = {}
        self.validated: set[Cell] = set()
        self.hazards: list[StaleWriteHazard] = []
        self._seen: set[tuple[int, int, Cell, str]] = set()

    # -- state plumbing ------------------------------------------------------

    def _snapshot(self) -> tuple[dict[str, dict[Cell, _Capture]], set[Cell]]:
        return (
            {
                name: {cell: _Capture(**vars(cap)) for cell, cap in caps.items()}
                for name, caps in self.captures.items()
            },
            set(self.validated),
        )

    def _restore(self, state: tuple[dict[str, dict[Cell, _Capture]], set[Cell]]) -> None:
        self.captures, self.validated = state

    @staticmethod
    def _merge_states(
        a: tuple[dict[str, dict[Cell, _Capture]], set[Cell]],
        b: tuple[dict[str, dict[Cell, _Capture]], set[Cell]],
    ) -> tuple[dict[str, dict[Cell, _Capture]], set[Cell]]:
        captures_a, validated_a = a
        captures_b, validated_b = b
        merged: dict[str, dict[Cell, _Capture]] = {}
        for name in set(captures_a) | set(captures_b):
            cells_a = captures_a.get(name, {})
            cells_b = captures_b.get(name, {})
            out: dict[Cell, _Capture] = {}
            for cell in set(cells_a) | set(cells_b):
                ca, cb = cells_a.get(cell), cells_b.get(cell)
                if ca is None:
                    out[cell] = cb  # type: ignore[assignment]
                elif cb is None:
                    out[cell] = ca
                else:
                    out[cell] = _Capture(
                        cell=cell,
                        read_line=min(ca.read_line, cb.read_line),
                        stale=ca.stale or cb.stale,
                        suspend_line=max(ca.suspend_line, cb.suspend_line),
                        alias=ca.alias or cb.alias,
                    )
            merged[name] = out
        return merged, validated_a & validated_b

    def _bump(self, line: int) -> None:
        """A suspension point: every live capture goes stale and every
        post-suspension validation expires.  ``suspend_line`` tracks the
        *latest* suspension — the one after which re-validation is
        missing — so the report points at the gap to close."""
        for caps in self.captures.values():
            for cap in caps.values():
                cap.stale = True
                cap.suspend_line = line
        self.validated.clear()

    def _validate(self, expr: ast.expr) -> None:
        """A fresh read of a cell in a test context re-validates it."""
        for cell, _node in self.resolver.cells_in(expr):
            self.validated.add(cell)

    # -- expression evaluation -----------------------------------------------

    def _value_captures(
        self, expr: ast.expr, will_suspend: bool
    ) -> dict[Cell, _Capture]:
        """The captures the value of ``expr`` carries.

        Direct cell reads positioned *before* the statement's first
        ``await`` are pre-suspension reads (the single-statement
        ``self.x = self.x + await f()`` form); reads after it, and the
        return values of awaited calls, are fresh.
        """
        first = _first_await(expr) if will_suspend else None
        out: dict[Cell, _Capture] = {}

        def put(cap: _Capture) -> None:
            existing = out.get(cap.cell)
            if existing is None or (cap.stale and not existing.stale):
                out[cap.cell] = cap
            elif cap.alias and not existing.alias:
                existing.alias = True

        # Which cell node (if any) is *directly aliased* by this value:
        # the whole expression is the cell itself, a subscript of it, or
        # a `.get`/`.pop`/`.setdefault` lookup on it.
        stripped = expr.value if isinstance(expr, ast.Await) else expr
        alias_node: ast.expr | None = None
        if isinstance(stripped, ast.Attribute):
            alias_node = stripped
        elif isinstance(stripped, ast.Subscript):
            alias_node = stripped.value
        elif (
            isinstance(stripped, ast.Call)
            and isinstance(stripped.func, ast.Attribute)
            and stripped.func.attr in {"get", "pop", "setdefault"}
        ):
            alias_node = stripped.func.value
        alias_cell = (
            self.resolver.cell_of(alias_node) if alias_node is not None else None
        )

        # A bare-name copy preserves aliasing; derived values do not.
        keeps_alias = isinstance(stripped, ast.Name)
        for node in _walk_expr(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                for cap in self.captures.get(node.id, {}).values():
                    copy = _Capture(**vars(cap))
                    if not keeps_alias:
                        copy.alias = False
                    put(copy)
            elif isinstance(node, ast.Call):
                site = self.sites.get(id(node))
                if site is None or site.kind not in _PRECISE_KINDS:
                    continue
                for callee_qual in site.callees:
                    callee = self.analysis.summaries.get(callee_qual)
                    if callee is None:
                        continue
                    for cell in callee.return_cells:
                        # Fresh whether or not the call was awaited: the
                        # read inside the callee happens at call time.
                        put(_Capture(cell=cell, read_line=node.lineno))
        for cell, node in self.resolver.cells_in(expr):
            is_alias = alias_cell is not None and cell == alias_cell
            pre = first is None or (
                (node.lineno, node.col_offset)
                < (first.lineno, first.col_offset)
            )
            if pre and will_suspend:
                # Read now, written after the await resolves: stale by
                # construction once the suspension happens.
                put(
                    _Capture(
                        cell=cell,
                        read_line=node.lineno,
                        stale=True,
                        suspend_line=first.lineno if first else node.lineno,
                        alias=is_alias,
                    )
                )
            else:
                put(_Capture(cell=cell, read_line=node.lineno, alias=is_alias))
        return out

    def _check_calls(self, expr: ast.expr) -> None:
        """Helper-mediated writes and in-place mutators inside ``expr``.

        Argument staleness is judged *before* any bump for this
        statement: call arguments are evaluated before the coroutine
        suspends, so only captures from earlier statements count.
        """
        for node in _walk_expr(expr):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATORS:
                cell = self.resolver.cell_of(node.func.value)
                if cell is not None:
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        self._flag_stale(
                            arg, {cell}, node.lineno, node.col_offset, "write",
                            detail=f"{node.func.attr}()",
                        )
            site = self.sites.get(id(node))
            if site is None or site.kind not in _PRECISE_KINDS:
                continue
            for callee_qual in site.callees:
                callee_fn = self.graph.functions.get(callee_qual)
                callee = self.analysis.summaries.get(callee_qual)
                if callee_fn is None or callee is None or not callee.param_writes:
                    continue
                for j, arg in enumerate(node.args):
                    idx = callee_fn.arg_param_index(j, site.bound)
                    targets = callee.param_writes.get(idx, set())
                    if targets:
                        self._flag_stale(
                            arg, targets, node.lineno, node.col_offset,
                            "helper", detail=site.name,
                        )
                for kw in node.keywords:
                    if kw.arg is None:
                        continue
                    idx = callee_fn.param_index_of(kw.arg)
                    if idx is None:
                        continue
                    targets = callee.param_writes.get(idx, set())
                    if targets:
                        self._flag_stale(
                            kw.value, targets, node.lineno, node.col_offset,
                            "helper", detail=site.name,
                        )

    def _flag_stale(
        self,
        expr: ast.expr,
        target_cells: set[Cell],
        line: int,
        col: int,
        kind: str,
        detail: str = "",
    ) -> None:
        """Report stale captures carried by ``expr`` that hit ``target_cells``."""
        for node in _walk_expr(expr):
            if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
                continue
            for cell, cap in self.captures.get(node.id, {}).items():
                if cell not in target_cells:
                    continue
                if cap.stale and cell not in self.validated:
                    self._emit(cell, cap, line, col, kind, detail)

    def _emit(
        self, cell: Cell, cap: _Capture, line: int, col: int, kind: str, detail: str
    ) -> None:
        key = (line, col, cell, kind)
        if key in self._seen:
            return
        self._seen.add(key)
        self.hazards.append(
            StaleWriteHazard(
                qualname=self.fn.qualname,
                relpath=self.fn.relpath,
                cell=cell,
                read_line=cap.read_line,
                suspend_line=cap.suspend_line,
                write_line=line,
                write_col=col,
                kind=kind,
                detail=detail,
            )
        )

    # -- statement walk ------------------------------------------------------

    def scan(self) -> None:
        node = self.fn.node
        if isinstance(node, ast.Lambda):
            return
        self._walk(list(node.body))

    def _walk(self, stmts: list[ast.stmt]) -> bool:
        """Process statements in order; True if the block terminates."""
        for stmt in stmts:
            if self._stmt(stmt):
                return True
        return False

    def _expr_suspends(self, *exprs: ast.expr | None) -> ast.Await | None:
        for expr in exprs:
            if expr is None:
                continue
            found = _first_await(expr)
            if found is not None:
                return found
        return None

    def _handle_value(self, expr: ast.expr) -> dict[Cell, _Capture]:
        """Evaluate one value expression: check calls, bump on await,
        and return the captures the value carries."""
        awaited = self._expr_suspends(expr)
        self._check_calls(expr)
        caps = self._value_captures(expr, will_suspend=awaited is not None)
        if awaited is not None:
            self._bump(awaited.lineno)
        return caps

    def _store(
        self, target: ast.expr, caps: dict[Cell, _Capture], line: int, col: int
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt, caps, line, col)
            return
        if isinstance(target, ast.Starred):
            self._store(target.value, caps, line, col)
            return
        if isinstance(target, ast.Name) and self.resolver.cell_of(target) is None:
            # Strong update: the local now carries exactly these captures.
            self.captures[target.id] = {
                cell: _Capture(**vars(cap)) for cell, cap in caps.items()
            }
            return
        cell = self.resolver.cell_of(target) if isinstance(
            target, (ast.Attribute, ast.Name)
        ) else None
        receiver: ast.expr | None = None
        if cell is None and isinstance(target, ast.Subscript):
            cell = self.resolver.cell_of(target.value)
            receiver = target.value
        elif isinstance(target, ast.Attribute):
            receiver = target.value
        if cell is not None:
            # Same-cell read-modify-write across a suspension.
            cap = caps.get(cell)
            if cap is not None and cap.stale and cell not in self.validated:
                self._emit(cell, cap, line, col, "write", detail="")
            return
        # Alias mutation: storing through a local that *directly
        # aliases* an object held in a cell mutates an object the cell
        # may no longer reference.
        if receiver is not None and isinstance(receiver, ast.Name):
            for alias_cell, cap in self.captures.get(receiver.id, {}).items():
                if cap.alias and cap.stale and alias_cell not in self.validated:
                    self._emit(alias_cell, cap, line, col, "alias", detail="")

    def _stmt(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return False
        if isinstance(stmt, (ast.Return, ast.Raise)):
            for expr in [getattr(stmt, "value", None), getattr(stmt, "exc", None)]:
                if expr is not None:
                    self._handle_value(expr)
            return True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return True
        if isinstance(stmt, ast.Expr):
            self._handle_value(stmt.value)
            return False
        if isinstance(stmt, ast.Assign):
            caps = self._handle_value(stmt.value)
            for target in stmt.targets:
                self._store(target, caps, stmt.lineno, stmt.col_offset)
            return False
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                caps = self._handle_value(stmt.value)
                self._store(stmt.target, caps, stmt.lineno, stmt.col_offset)
            return False
        if isinstance(stmt, ast.AugAssign):
            caps = self._handle_value(stmt.value)
            if isinstance(stmt.target, ast.Name):
                merged = self.captures.setdefault(stmt.target.id, {})
                for cell, cap in caps.items():
                    merged[cell] = _Capture(**vars(cap))
            else:
                self._store(stmt.target, caps, stmt.lineno, stmt.col_offset)
            return False
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.captures.pop(target.id, None)
            return False
        if isinstance(stmt, ast.If):
            self._handle_value(stmt.test)
            self._validate(stmt.test)
            before = self._snapshot()
            body_done = self._walk(stmt.body)
            body_state = self._snapshot()
            self._restore(before)
            else_done = self._walk(stmt.orelse)
            else_state = self._snapshot()
            if body_done and else_done:
                return True
            if body_done:
                self._restore(else_state)
            elif else_done:
                self._restore(body_state)
            else:
                self._restore(self._merge_states(body_state, else_state))
            return False
        if isinstance(stmt, (ast.While, ast.For)):
            if isinstance(stmt, ast.While):
                self._handle_value(stmt.test)
                self._validate(stmt.test)
            else:
                caps = self._handle_value(stmt.iter)
                self._store(stmt.target, caps, stmt.lineno, stmt.col_offset)
            for _ in range(2):  # second pass: captures meet next iteration
                self._walk(stmt.body)
                if isinstance(stmt, ast.While):
                    self._handle_value(stmt.test)
                    self._validate(stmt.test)
            self._walk(stmt.orelse)
            return False
        if isinstance(stmt, ast.AsyncFor):
            caps = self._handle_value(stmt.iter)
            self._bump(stmt.lineno)  # each iteration suspends
            self._store(stmt.target, caps, stmt.lineno, stmt.col_offset)
            for _ in range(2):
                self._walk(stmt.body)
                self._bump(stmt.lineno)
            self._walk(stmt.orelse)
            return False
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                caps = self._handle_value(item.context_expr)
                if item.optional_vars is not None:
                    self._store(
                        item.optional_vars, caps, stmt.lineno, stmt.col_offset
                    )
            if isinstance(stmt, ast.AsyncWith):
                self._bump(stmt.lineno)
            return self._walk(stmt.body)
        if isinstance(stmt, ast.Try):
            done = self._walk(stmt.body)
            body_state = self._snapshot()
            states = [] if done else [body_state]
            for handler in stmt.handlers:
                self._restore(body_state)
                if not self._walk(handler.body):
                    states.append(self._snapshot())
            if not states:
                self._walk(stmt.finalbody)
                return True
            merged = states[0]
            for state in states[1:]:
                merged = self._merge_states(merged, state)
            self._restore(merged)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
            return False
        if isinstance(stmt, ast.Assert):
            self._handle_value(stmt.test)
            self._validate(stmt.test)
            return False
        if isinstance(stmt, ast.Match):
            self._handle_value(stmt.subject)
            self._validate(stmt.subject)
            for case in stmt.cases:
                before = self._snapshot()
                self._walk(case.body)
                self._restore(before)
            return False
        return False
