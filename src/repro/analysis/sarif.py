"""SARIF 2.1.0 emitter for ``repro lint --format sarif``.

Static Analysis Results Interchange Format — the dialect GitHub code
scanning ingests (``github/codeql-action/upload-sarif``).  Only *new*
findings are emitted as results: baselined findings are accepted debt
tracked in ``lint-baseline.json``, and surfacing them again in code
scanning would bury real regressions.  The exit-code gate in CI stays
the source of truth; the SARIF upload is a reporting surface.
"""

from __future__ import annotations

import json

from .diagnostics import Severity
from .engine import LintReport
from .rules import ALL_RULES

__all__ = ["format_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
_SRC_PREFIX = "src/repro/"


def _level(severity: str) -> str:
    return "warning" if severity == Severity.WARNING else "error"


def format_sarif(report: LintReport, *, tool_version: str = "1.0.0") -> str:
    rule_ids = sorted(ALL_RULES)
    rules_meta = [
        {
            "id": rule_id,
            "name": type(ALL_RULES[rule_id]).__name__,
            "shortDescription": {"text": ALL_RULES[rule_id].summary},
            "help": {"text": ALL_RULES[rule_id].hint},
            "defaultConfiguration": {"level": _level(ALL_RULES[rule_id].severity)},
        }
        for rule_id in rule_ids
    ]
    index_of = {rule_id: index for index, rule_id in enumerate(rule_ids)}

    results = []
    for diag in report.diagnostics:
        result = {
            "ruleId": diag.rule,
            "level": _level(diag.severity),
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _SRC_PREFIX + diag.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": diag.line,
                            "startColumn": diag.col + 1,
                        },
                    }
                }
            ],
        }
        if diag.rule in index_of:
            result["ruleIndex"] = index_of[diag.rule]
        if diag.code:
            result["partialFingerprints"] = {
                "reproLintFingerprint/v1": f"{diag.rule}:{diag.path}:{diag.code}"
            }
        results.append(result)

    invocation_ok = report.ok and not report.errors
    payload = {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://github.com/",
                        "version": tool_version,
                        "rules": rules_meta,
                    }
                },
                "invocations": [
                    {
                        "executionSuccessful": invocation_ok,
                        "toolExecutionNotifications": [
                            {"level": "error", "message": {"text": error}}
                            for error in report.errors
                        ],
                    }
                ],
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
