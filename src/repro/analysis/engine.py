"""The ``repro lint`` engine: discovery, checking, baseline, output.

Pipeline::

    paths -> discover *.py -> parse -> run scoped rules
          -> drop inline `# repro: noqa-RLxxx` suppressions
          -> split against the baseline -> report (text or JSON)

The engine is import-light and dependency-free: it runs on the ``ast``
module only, so CI can run it everywhere the package itself runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline, BaselineEntry
from .diagnostics import Diagnostic
from .rules import Rule, rules_by_id
from .source import LintSyntaxError, SourceFile

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "LintReport",
    "discover_files",
    "format_json",
    "lint_sources",
    "run_lint",
    "write_baseline",
]

DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass
class LintReport:
    """Everything a caller (CLI, guard test) needs to act on."""

    diagnostics: list[Diagnostic]  # new findings (not suppressed, not baselined)
    baselined: list[Diagnostic]
    suppressed: int
    stale_baseline: list[BaselineEntry]
    files_scanned: int
    errors: list[str] = field(default_factory=list)  # unparseable files etc.

    @property
    def ok(self) -> bool:
        return not self.diagnostics and not self.errors

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "baselined": len(self.baselined),
            "stale_baseline": [entry.to_dict() for entry in self.stale_baseline],
            "errors": self.errors,
            "diagnostics": [diag.to_dict() for diag in self.diagnostics],
        }

    def format_text(self, *, verbose: bool = False) -> str:
        lines = [diag.format_text() for diag in self.diagnostics]
        for error in self.errors:
            lines.append(f"error: {error}")
        if verbose and self.baselined:
            lines.append(f"note: {len(self.baselined)} baselined finding(s) not shown")
        if self.stale_baseline:
            lines.append(
                f"note: {len(self.stale_baseline)} stale baseline entr"
                f"{'y' if len(self.stale_baseline) == 1 else 'ies'} — the violation "
                "is gone; delete the entry to ratchet"
            )
            for entry in self.stale_baseline:
                lines.append(f"  stale: {entry.rule} {entry.path}: {entry.code}")
        summary = (
            f"{len(self.diagnostics)} finding(s), {len(self.baselined)} baselined, "
            f"{self.suppressed} suppressed, {self.files_scanned} file(s) scanned"
        )
        lines.append(summary)
        return "\n".join(lines)


def discover_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.is_file():
            found.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


def lint_sources(
    sources: list[SourceFile],
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Run rules over already-parsed sources (the testable core)."""
    active = rules if rules is not None else rules_by_id(None)
    raw: list[Diagnostic] = []
    for rule in active:
        if rule.project_wide:
            raw.extend(rule.check_project(sources))
        else:
            for source in sources:
                if rule.applies_to(source.relpath):
                    raw.extend(rule.check(source))

    by_relpath = {source.relpath: source for source in sources}
    kept: list[Diagnostic] = []
    suppressed = 0
    for diag in raw:
        source = by_relpath.get(diag.path)
        if source is not None and source.is_suppressed(diag.line, diag.rule):
            suppressed += 1
        else:
            kept.append(diag)
    kept.sort(key=Diagnostic.sort_key)

    if baseline is None:
        new, matched, stale = kept, [], []
    else:
        new, matched, stale = baseline.split(kept)
    return LintReport(
        diagnostics=new,
        baselined=matched,
        suppressed=suppressed,
        stale_baseline=stale,
        files_scanned=len(sources),
    )


def run_lint(
    paths: list[Path],
    *,
    rule_ids: list[str] | None = None,
    baseline_path: Path | None = None,
) -> LintReport:
    """Discover, parse and lint ``paths``; the CLI entry point's core."""
    files = discover_files(paths)
    sources: list[SourceFile] = []
    errors: list[str] = []
    for file in files:
        try:
            sources.append(SourceFile.from_path(file))
        except LintSyntaxError as exc:
            errors.append(str(exc))
        except (OSError, UnicodeDecodeError) as exc:
            errors.append(f"{file}: {exc}")

    baseline = None
    if baseline_path is not None and baseline_path.exists():
        baseline = Baseline.load(baseline_path)

    report = lint_sources(sources, rules=rules_by_id(rule_ids), baseline=baseline)
    report.errors.extend(errors)
    return report


def write_baseline(report: LintReport, path: Path) -> Baseline:
    """Snapshot the report's findings (new + already baselined) to ``path``."""
    baseline = Baseline.from_diagnostics(
        report.diagnostics + report.baselined,
        reason="baselined by --write-baseline; add a specific justification",
    )
    baseline.write(path)
    return baseline


def format_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2)
