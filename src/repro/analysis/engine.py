"""The ``repro lint`` engine: discovery, checking, baseline, output.

Pipeline::

    paths -> discover *.py -> parse (optionally multiprocess)
          -> run scoped rules (per-file in workers, project-wide here)
          -> drop inline `# repro: noqa-RLxxx` suppressions
          -> split against the baseline -> report (text / JSON / SARIF)

The engine is import-light and dependency-free: it runs on the ``ast``
module only, so CI can run it everywhere the package itself runs.

Exit semantics are severity-aware: ``error`` findings fail the lint,
``warning`` findings are reported but do not (RL007's unreachable-
handler diagnosis can be test-only code; see docs/STATIC_ANALYSIS.md).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline, BaselineEntry
from .diagnostics import Diagnostic, Severity
from .rules import Rule, rules_by_id
from .source import LintSyntaxError, SourceFile

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "LintReport",
    "discover_files",
    "format_json",
    "lint_sources",
    "run_lint",
    "write_baseline",
]

DEFAULT_BASELINE_NAME = "lint-baseline.json"

# Below this many files the process-pool startup costs more than it saves.
_PARALLEL_THRESHOLD = 8


@dataclass
class LintReport:
    """Everything a caller (CLI, guard test) needs to act on."""

    diagnostics: list[Diagnostic]  # new findings (not suppressed, not baselined)
    baselined: list[Diagnostic]
    suppressed: int
    stale_baseline: list[BaselineEntry]
    files_scanned: int
    errors: list[str] = field(default_factory=list)  # unparseable files etc.
    timings: dict[str, float] = field(default_factory=dict)  # rule id -> seconds

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == Severity.WARNING)

    @property
    def ok(self) -> bool:
        """Warnings inform; only errors (and unreadable files) fail."""
        return self.error_count == 0 and not self.errors

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "baselined": len(self.baselined),
            "errors_count": self.error_count,
            "warnings_count": self.warning_count,
            "stale_baseline": [entry.to_dict() for entry in self.stale_baseline],
            "errors": self.errors,
            "diagnostics": [diag.to_dict() for diag in self.diagnostics],
            "timings": {rule: round(secs, 4) for rule, secs in sorted(self.timings.items())},
        }

    def format_text(self, *, verbose: bool = False) -> str:
        lines = [diag.format_text() for diag in self.diagnostics]
        for error in self.errors:
            lines.append(f"error: {error}")
        if verbose and self.baselined:
            lines.append(f"note: {len(self.baselined)} baselined finding(s) not shown")
        if self.stale_baseline:
            lines.append(
                f"note: {len(self.stale_baseline)} stale baseline entr"
                f"{'y' if len(self.stale_baseline) == 1 else 'ies'} — the violation "
                "is gone; delete the entry to ratchet"
            )
            for entry in self.stale_baseline:
                lines.append(f"  stale: {entry.rule} {entry.path}: {entry.code}")
        if verbose and self.timings:
            for rule, secs in sorted(self.timings.items()):
                lines.append(f"timing: {rule} {secs * 1000:.1f}ms")
        summary = (
            f"{len(self.diagnostics)} finding(s) "
            f"({self.error_count} error(s), {self.warning_count} warning(s)), "
            f"{len(self.baselined)} baselined, "
            f"{self.suppressed} suppressed, {self.files_scanned} file(s) scanned"
        )
        lines.append(summary)
        return "\n".join(lines)


def discover_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.is_file():
            found.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


def _check_source(
    source: SourceFile, rules: list[Rule]
) -> tuple[list[Diagnostic], dict[str, float]]:
    """Per-file rules over one source (runs in workers under --jobs)."""
    raw: list[Diagnostic] = []
    timings: dict[str, float] = {}
    for rule in rules:
        if rule.project_wide or not rule.applies_to(source.relpath):
            continue
        start = time.perf_counter()
        raw.extend(rule.check(source))
        timings[rule.rule_id] = timings.get(rule.rule_id, 0.0) + (
            time.perf_counter() - start
        )
    return raw, timings


def _check_project(
    sources: list[SourceFile], rules: list[Rule]
) -> tuple[list[Diagnostic], dict[str, float]]:
    """Project-wide rules (always run in the parent: they need it all)."""
    raw: list[Diagnostic] = []
    timings: dict[str, float] = {}
    for rule in rules:
        if not rule.project_wide:
            continue
        start = time.perf_counter()
        raw.extend(rule.check_project(sources))
        timings[rule.rule_id] = time.perf_counter() - start
    return raw, timings


def _finish(
    sources: list[SourceFile],
    raw: list[Diagnostic],
    baseline: Baseline | None,
    timings: dict[str, float],
) -> LintReport:
    """Suppression + baseline split, shared by serial and parallel paths."""
    noqa_warnings = [
        diag for source in sources for diag in source.unknown_noqa_diagnostics()
    ]
    by_relpath = {source.relpath: source for source in sources}
    kept: list[Diagnostic] = []
    suppressed = 0
    for diag in raw:
        source = by_relpath.get(diag.path)
        if source is not None and source.is_suppressed(diag.line, diag.rule):
            suppressed += 1
        else:
            kept.append(diag)
    kept.extend(noqa_warnings)
    kept.sort(key=Diagnostic.sort_key)

    if baseline is None:
        new, matched, stale = kept, [], []
    else:
        new, matched, stale = baseline.split(kept)
    return LintReport(
        diagnostics=new,
        baselined=matched,
        suppressed=suppressed,
        stale_baseline=stale,
        files_scanned=len(sources),
        timings=timings,
    )


def lint_sources(
    sources: list[SourceFile],
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Run rules over already-parsed sources (the testable core)."""
    active = rules if rules is not None else rules_by_id(None)
    raw: list[Diagnostic] = []
    timings: dict[str, float] = {}
    for source in sources:
        file_raw, file_timings = _check_source(source, active)
        raw.extend(file_raw)
        for rule_id, secs in file_timings.items():
            timings[rule_id] = timings.get(rule_id, 0.0) + secs
    project_raw, project_timings = _check_project(sources, active)
    raw.extend(project_raw)
    timings.update(project_timings)
    return _finish(sources, raw, baseline, timings)


def _scan_one(args: tuple[str, list[str] | None]) -> tuple[
    SourceFile | None, list[Diagnostic], dict[str, float], str | None
]:
    """Worker: parse one file and run the per-file rules on it.

    Module-level (picklable) so ProcessPoolExecutor can ship it; both
    ``SourceFile`` (plain dataclass holding an ``ast`` tree) and
    ``Diagnostic`` pickle cleanly back to the parent.
    """
    path_str, rule_ids = args
    try:
        source = SourceFile.from_path(Path(path_str))
    except LintSyntaxError as exc:
        return None, [], {}, str(exc)
    except (OSError, UnicodeDecodeError) as exc:
        return None, [], {}, f"{path_str}: {exc}"
    raw, timings = _check_source(source, rules_by_id(rule_ids))
    return source, raw, timings, None


def _finish_file(
    source: SourceFile, raw: list[Diagnostic]
) -> tuple[list[Diagnostic], int, list[Diagnostic]]:
    """One file's finished per-file outcome: the post-suppression
    diagnostics, the suppression count, and the unknown-noqa warnings.
    This is the unit the incremental cache stores — everything about a
    file that does not depend on any other file."""
    kept: list[Diagnostic] = []
    suppressed = 0
    for diag in raw:
        if source.is_suppressed(diag.line, diag.rule):
            suppressed += 1
        else:
            kept.append(diag)
    return kept, suppressed, source.unknown_noqa_diagnostics()


def _split_and_report(
    kept: list[Diagnostic],
    baseline: Baseline | None,
    *,
    suppressed: int,
    files_scanned: int,
    timings: dict[str, float],
    errors: list[str],
) -> LintReport:
    kept = sorted(kept, key=Diagnostic.sort_key)
    if baseline is None:
        new, matched, stale = kept, [], []
    else:
        new, matched, stale = baseline.split(kept)
    return LintReport(
        diagnostics=new,
        baselined=matched,
        suppressed=suppressed,
        stale_baseline=stale,
        files_scanned=files_scanned,
        errors=errors,
        timings=timings,
    )


def run_lint(
    paths: list[Path],
    *,
    rule_ids: list[str] | None = None,
    baseline_path: Path | None = None,
    jobs: int | None = None,
    cache_path: Path | None = None,
) -> LintReport:
    """Discover, parse and lint ``paths``; the CLI entry point's core.

    ``jobs`` > 1 parses and per-file-checks in a process pool; the
    project-wide rules (which need every tree at once) and the baseline
    split always run in the parent.  Falls back to serial on any pool
    failure — sandboxes without working ``fork``/semaphores are real.

    ``cache_path`` enables the incremental cache (``.lint-cache.json``):
    per-file results are reused when the file's content digest is
    unchanged, and the project-wide rules' results are reused when *no*
    file changed.  On a fully-unchanged tree nothing is even parsed.
    The baseline split always runs fresh, so results are byte-identical
    with and without the cache.
    """
    files = discover_files(paths)
    baseline = None
    if baseline_path is not None and baseline_path.exists():
        baseline = Baseline.load(baseline_path)
    active = rules_by_id(rule_ids)

    cache = None
    digests: dict[str, str] = {}
    hits: dict[str, dict] = {}
    if cache_path is not None:
        from .cache import LintCache, compute_salt, content_digest, tree_key

        cache = LintCache.load(cache_path, compute_salt(rule_ids))
        for file in files:
            key = str(file.resolve())
            try:
                digests[key] = content_digest(file.read_bytes())
            except OSError:
                continue  # unreadable: handled as a miss below
            entry = cache.get_file(key, digests[key])
            if entry is not None:
                hits[key] = entry
        project_key = tree_key(digests)
        project_entry = (
            cache.get_project(project_key) if len(hits) == len(files) else None
        )

        if project_entry is not None and len(hits) == len(files):
            # Fully-unchanged tree: assemble the report from the cache
            # without parsing a single file.
            kept: list[Diagnostic] = []
            suppressed = 0
            errors: list[str] = []
            timings: dict[str, float] = {}
            files_scanned = 0
            for file in files:
                file_kept, file_supp, noqa, file_timings, error = (
                    LintCache.file_result(hits[str(file.resolve())])
                )
                if error is not None:
                    errors.append(error)
                    continue
                files_scanned += 1
                kept.extend(file_kept)
                kept.extend(noqa)
                suppressed += file_supp
                for rule_id, secs in file_timings.items():
                    timings[rule_id] = timings.get(rule_id, 0.0) + secs
            proj_kept, proj_supp, proj_timings = LintCache.project_result(
                project_entry
            )
            kept.extend(proj_kept)
            suppressed += proj_supp
            timings.update(proj_timings)
            return _split_and_report(
                kept,
                baseline,
                suppressed=suppressed,
                files_scanned=files_scanned,
                timings=timings,
                errors=errors,
            )

    miss_files = [
        file for file in files if cache is None or str(file.resolve()) not in hits
    ]
    scanned: list[
        tuple[SourceFile | None, list[Diagnostic], dict[str, float], str | None]
    ] | None = None
    if jobs is not None and jobs > 1 and len(miss_files) >= _PARALLEL_THRESHOLD:
        try:
            import concurrent.futures

            with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
                scanned = list(
                    pool.map(
                        _scan_one,
                        [(str(file), rule_ids) for file in miss_files],
                        chunksize=max(1, len(miss_files) // (jobs * 4)),
                    )
                )
        except (OSError, ImportError, concurrent.futures.process.BrokenProcessPool):
            scanned = None
    if scanned is None:
        scanned = [_scan_one((str(file), rule_ids)) for file in miss_files]
    miss_results = dict(zip((str(file) for file in miss_files), scanned))

    sources: list[SourceFile] = []
    kept = []
    suppressed = 0
    errors = []
    timings = {}
    for file in files:
        key = str(file.resolve())
        if cache is not None and key in hits:
            # Unchanged file: reuse its finished per-file outcome, but
            # re-parse it — the project-wide rules need every tree.
            file_kept, file_supp, noqa, file_timings, error = (
                LintCache.file_result(hits[key])
            )
            if error is not None:
                errors.append(error)
                continue
            try:
                sources.append(SourceFile.from_path(file))
            except (LintSyntaxError, OSError, UnicodeDecodeError) as exc:
                errors.append(str(exc))  # raced edit since the digest read
                continue
        else:
            source, raw, file_timings, error = miss_results[str(file)]
            if error is not None:
                errors.append(error)
                if cache is not None and key in digests:
                    cache.put_file(
                        key, digests[key], kept=[], suppressed=0, noqa=[],
                        timings={}, error=error,
                    )
                continue
            assert source is not None
            sources.append(source)
            file_kept, file_supp, noqa = _finish_file(source, raw)
            if cache is not None and key in digests:
                cache.put_file(
                    key, digests[key], kept=file_kept, suppressed=file_supp,
                    noqa=noqa, timings=file_timings, error=None,
                )
        kept.extend(file_kept)
        kept.extend(noqa)
        suppressed += file_supp
        for rule_id, secs in file_timings.items():
            timings[rule_id] = timings.get(rule_id, 0.0) + secs

    project_raw, project_timings = _check_project(sources, active)
    by_relpath = {source.relpath: source for source in sources}
    proj_kept = []
    proj_supp = 0
    for diag in project_raw:
        source = by_relpath.get(diag.path)
        if source is not None and source.is_suppressed(diag.line, diag.rule):
            proj_supp += 1
        else:
            proj_kept.append(diag)
    kept.extend(proj_kept)
    suppressed += proj_supp
    timings.update(project_timings)

    if cache is not None:
        cache.put_project(
            project_key, kept=proj_kept, suppressed=proj_supp,
            timings=project_timings,
        )
        cache.prune(set(digests))
        cache.save()

    return _split_and_report(
        kept,
        baseline,
        suppressed=suppressed,
        files_scanned=len(sources),
        timings=timings,
        errors=errors,
    )


def write_baseline(report: LintReport, path: Path) -> Baseline:
    """Snapshot the report's findings (new + already baselined) to ``path``.

    Hand-written ``reason`` fields (and multi-occurrence ``count``s) of
    entries already in the file are preserved; only genuinely new
    entries get the add-a-justification placeholder.
    """
    existing: dict[tuple[str, str, str], BaselineEntry] = {}
    if path.exists():
        for entry in Baseline.load(path).entries:
            existing.setdefault(entry.fingerprint(), entry)
    baseline = Baseline.from_diagnostics(
        report.diagnostics + report.baselined,
        reason="baselined by --write-baseline; add a specific justification",
    )
    for entry in baseline.entries:
        kept = existing.get(entry.fingerprint())
        if kept is not None and kept.reason:
            entry.reason = kept.reason
    baseline.write(path)
    return baseline


def format_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2)
