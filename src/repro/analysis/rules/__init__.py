"""Checker registry for ``repro lint``.

Each rule is an object with

* ``rule_id`` / ``severity`` / ``summary`` — identification;
* ``scope`` — package-relative path prefixes it applies to (empty means
  everywhere) and ``exclude`` prefixes it never applies to;
* either ``check(source) -> list[Diagnostic]`` for per-file rules or
  ``check_project(sources) -> list[Diagnostic]`` for whole-project
  rules (RL004 needs the wire registry *and* every definition site).

Rules protect the cross-cutting invariants of Cachin's architecture
(DSN 2001); see docs/STATIC_ANALYSIS.md for the rule-by-rule rationale
and the paper sections each one traces to.
"""

from __future__ import annotations

from ..diagnostics import Diagnostic, Severity
from ..source import SourceFile

__all__ = ["Rule", "ALL_RULES", "rules_by_id"]


class Rule:
    """Base class: scoping plus the per-file/project check split."""

    rule_id: str = ""
    severity: str = Severity.ERROR
    summary: str = ""
    hint: str = ""
    # Package-relative prefixes ("core/", "smr/", exact files like
    # "net/wire.py").  Empty scope means the whole package.
    scope: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    project_wide: bool = False

    def applies_to(self, relpath: str) -> bool:
        if any(relpath == ex or relpath.startswith(ex) for ex in self.exclude):
            return False
        if not self.scope:
            return True
        return any(relpath == sc or relpath.startswith(sc) for sc in self.scope)

    def check(self, source: SourceFile) -> list[Diagnostic]:
        raise NotImplementedError

    def check_project(self, sources: list[SourceFile]) -> list[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self,
        source: SourceFile,
        line: int,
        col: int,
        message: str,
        hint: str | None = None,
        severity: str | None = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule=self.rule_id,
            path=source.relpath,
            line=line,
            col=col,
            message=message,
            severity=self.severity if severity is None else severity,
            hint=self.hint if hint is None else hint,
            code=source.line_text(line),
        )


def _build_registry() -> dict[str, Rule]:
    from .async_hygiene import AsyncHygieneRule
    from .concurrency import StaleReadAcrossAwaitRule, UnownedMutableHandoffRule
    from .determinism import DeterminismRule
    from .messages import MessageRegistrationRule
    from .quorum import QuorumArithmeticRule
    from .results import DiscardedResultRule
    from .taint import HandlerReachabilityRule, TaintFlowRule

    rules = [
        QuorumArithmeticRule(),
        DiscardedResultRule(),
        DeterminismRule(),
        MessageRegistrationRule(),
        AsyncHygieneRule(),
        TaintFlowRule(),
        HandlerReachabilityRule(),
        StaleReadAcrossAwaitRule(),
        UnownedMutableHandoffRule(),
    ]
    return {rule.rule_id: rule for rule in rules}


ALL_RULES: dict[str, Rule] = _build_registry()


def rules_by_id(ids: list[str] | None = None) -> list[Rule]:
    """Resolve rule ids (case-insensitive); None means every rule."""
    if ids is None:
        return list(ALL_RULES.values())
    out = []
    for raw in ids:
        rule = ALL_RULES.get(raw.strip().upper())
        if rule is None:
            raise KeyError(f"unknown rule {raw!r} (known: {', '.join(sorted(ALL_RULES))})")
        out.append(rule)
    return out
