"""RL001 — raw quorum arithmetic outside the ``adversary`` package.

Section 4.2 of the paper replaces the classical thresholds ``n - t``,
``2t + 1`` and ``t + 1`` with set predicates over a Q^3 adversary
structure.  The protocols stay correct under generalized trust only
because every quorum decision goes through the
:class:`~repro.adversary.quorums.QuorumSystem` interface — a literal
``len(received) >= 2 * t + 1`` silently pins the code to the threshold
case (exactly the rot Asymmetric Distributed Trust warns about).

Flagged patterns (outside ``adversary/``):

* ``2 * t + 1`` / ``3 * t + 1`` (and the commuted forms),
* ``n - t`` where ``n`` is an ``n``-like name or ``len(...)``,
* integer division by 3 (``n // 3``, ``(2 * len(m)) // 3``).

``t + 1`` alone is *not* flagged — it is far too common in threshold
cryptography (polynomial degrees, share counts) to be a useful signal.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..source import SourceFile
from . import Rule

__all__ = ["QuorumArithmeticRule"]

_T_NAMES = {"t", "f", "faults", "threshold", "max_faults", "num_faults"}
_N_NAMES = {"n", "num_parties", "num_servers", "num_replicas", "total"}


def _terminal_name(node: ast.expr) -> str | None:
    """The identifier at the tip of a Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_t_like(node: ast.expr) -> bool:
    name = _terminal_name(node)
    return name is not None and name.lower() in _T_NAMES


def _is_n_like(node: ast.expr) -> bool:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and node.func.id == "len":
        return True
    name = _terminal_name(node)
    return name is not None and name.lower() in _N_NAMES


def _is_const(node: ast.expr, value: int) -> bool:
    return isinstance(node, ast.Constant) and node.value == value


def _is_kt(node: ast.expr) -> bool:
    """``2 * t`` or ``3 * t`` in either operand order."""
    if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult)):
        return False
    left, right = node.left, node.right
    return (_is_const(left, 2) or _is_const(left, 3)) and _is_t_like(right) or (
        (_is_const(right, 2) or _is_const(right, 3)) and _is_t_like(left)
    )


def _match(node: ast.expr) -> str | None:
    """Return a description when ``node`` is raw quorum arithmetic."""
    if isinstance(node, ast.BinOp):
        # k*t + 1  /  1 + k*t
        if isinstance(node.op, ast.Add):
            if (_is_kt(node.left) and _is_const(node.right, 1)) or (
                _is_kt(node.right) and _is_const(node.left, 1)
            ):
                return "threshold expression 'k*t + 1'"
        # n - t
        if isinstance(node.op, ast.Sub) and _is_n_like(node.left) and _is_t_like(node.right):
            return "threshold expression 'n - t'"
        # ... // 3
        if isinstance(node.op, ast.FloorDiv) and _is_const(node.right, 3):
            return "integer division by 3 (classical n/3 resilience bound)"
        # bare 2*t / 3*t in comparisons such as len(x) > 3*t
        if _is_kt(node):
            return "threshold expression 'k*t'"
    return None


class QuorumArithmeticRule(Rule):
    rule_id = "RL001"
    summary = "raw quorum arithmetic outside adversary/"
    hint = (
        "route the check through the QuorumSystem (ctx.quorum.is_quorum / "
        "is_strong_quorum / contains_honest) so generalized Q^3 structures keep working"
    )
    exclude = ("adversary/", "analysis/")

    def check(self, source: SourceFile) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        stack: list[ast.AST] = [source.tree]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.expr):
                what = _match(node)
                if what is not None:
                    diagnostics.append(
                        self.diagnostic(
                            source,
                            node.lineno,
                            node.col_offset,
                            f"{what} hard-codes the classical threshold quorum",
                        )
                    )
                    continue  # do not re-flag sub-expressions of a match
            stack.extend(ast.iter_child_nodes(node))
        diagnostics.sort(key=Diagnostic.sort_key)
        return diagnostics
