"""RL004 — message dataclasses missing codec registration or a handler.

The wire layer (``net/wire.py``) can only decode dataclasses that were
explicitly registered — an unregistered message type works in the
object-passing simulator and then fails the moment the stack runs over
real bytes.  Symmetrically, a message that no protocol dispatches on
(no ``isinstance`` check / ``match`` case anywhere) is dead weight that
suggests a handler was forgotten.

This is a *project-wide* rule: it needs the registration list from
``net/wire.py`` plus every definition and dispatch site.

A dataclass defined in ``core/`` (or ``net/wire.py``) counts as a
*message* when it is sent — constructed inside a ``ctx.broadcast(...)``
or ``ctx.send(...)`` call anywhere in the scanned tree — or when it is
already registered with the codec.  For each message:

* sent but not registered      -> "not registered with the wire codec";
* sent/registered but never matched by ``isinstance``/``match``
  anywhere                      -> "no handler dispatches on it".
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..source import SourceFile
from . import Rule

__all__ = ["MessageRegistrationRule"]

_WIRE_PATH = "net/wire.py"
_SEND_METHODS = {"broadcast", "send"}


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return True
    return False


def _registered_names(sources: list[SourceFile]) -> set[str]:
    """Class names registered with the wire codec.

    Two registration styles are recognized: membership in the
    ``classes = [...]`` list inside ``net/wire.py`` (the repo's idiom),
    and a ``@register`` / ``@wire.register`` decorator anywhere.
    """
    registered: set[str] = set()
    for source in sources:
        if source.relpath == _WIRE_PATH:
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Assign):
                    continue
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if "classes" not in targets or not isinstance(node.value, (ast.List, ast.Tuple)):
                    continue
                for element in node.value.elts:
                    if isinstance(element, ast.Attribute):
                        registered.add(element.attr)
                    elif isinstance(element, ast.Name):
                        registered.add(element.id)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                for deco in node.decorator_list:
                    target = deco.func if isinstance(deco, ast.Call) else deco
                    name = target.attr if isinstance(target, ast.Attribute) else (
                        target.id if isinstance(target, ast.Name) else None
                    )
                    if name == "register":
                        registered.add(node.name)
    return registered


def _sent_names(sources: list[SourceFile]) -> set[str]:
    """Class names constructed inside a broadcast(...)/send(...) call."""
    sent: set[str] = set()
    for source in sources:
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SEND_METHODS
            ):
                continue
            for arg in node.args:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
                        sent.add(sub.func.id)
    return sent


def _dispatched_names(sources: list[SourceFile]) -> set[str]:
    """Class names some handler dispatches on (isinstance or match)."""
    dispatched: set[str] = set()
    for source in sources:
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2
            ):
                spec = node.args[1]
                candidates = spec.elts if isinstance(spec, (ast.Tuple, ast.List)) else [spec]
                for cand in candidates:
                    if isinstance(cand, ast.Name):
                        dispatched.add(cand.id)
                    elif isinstance(cand, ast.Attribute):
                        dispatched.add(cand.attr)
            elif isinstance(node, ast.MatchClass):
                cls = node.cls
                if isinstance(cls, ast.Name):
                    dispatched.add(cls.id)
                elif isinstance(cls, ast.Attribute):
                    dispatched.add(cls.attr)
    return dispatched


class MessageRegistrationRule(Rule):
    rule_id = "RL004"
    summary = "message dataclass unregistered with codec or unhandled"
    hint = (
        "add the class to the registration list in net/wire.py and dispatch on "
        "it with isinstance()/match in a handler"
    )
    scope = ("core/", _WIRE_PATH)
    project_wide = True

    def check_project(self, sources: list[SourceFile]) -> list[Diagnostic]:
        registered = _registered_names(sources)
        sent = _sent_names(sources)
        dispatched = _dispatched_names(sources)

        diagnostics: list[Diagnostic] = []
        for source in sources:
            if not self.applies_to(source.relpath):
                continue
            for node in source.tree.body:
                if not isinstance(node, ast.ClassDef) or not _is_dataclass_decorated(node):
                    continue
                name = node.name
                is_message = name in sent or name in registered
                if not is_message:
                    continue
                if name in sent and name not in registered:
                    diagnostics.append(
                        self.diagnostic(
                            source,
                            node.lineno,
                            node.col_offset,
                            f"message dataclass {name} is sent but never registered "
                            "with the wire codec (net/wire.py)",
                        )
                    )
                if name not in dispatched:
                    diagnostics.append(
                        self.diagnostic(
                            source,
                            node.lineno,
                            node.col_offset,
                            f"message dataclass {name} has no handler: nothing "
                            "dispatches on it with isinstance()/match",
                        )
                    )
        diagnostics.sort(key=Diagnostic.sort_key)
        return diagnostics
