"""RL005 — async hygiene in protocol handlers and the TCP transport.

Five failure modes (``core/``, ``smr/``, and the asyncio transport
modules ``net/transport.py`` / ``net/runtime.py`` / ``net/chaos.py`` /
``net/checkers.py``):

1. **Un-awaited coroutines.**  A bare statement ``self.flush(ctx)``
   where ``flush`` is an ``async def`` creates a coroutine object and
   drops it — the body never runs.  Flagged when the called name is an
   ``async def`` defined in the same module (the only case decidable
   without type inference).

2. **State mutation after ``await`` without re-checking the guard.**
   Every ``await`` is a scheduling point: by the time the handler
   resumes, other messages may have advanced the round/epoch/view, so
   writes to shared protocol state (``self.*`` / ``state.*``) based on
   pre-await reasoning can clobber newer state.  Flagged when an async
   function assigns to such an attribute after an ``await`` with no
   intervening conditional that mentions a guard variable (a name
   containing ``round``, ``epoch``, ``view``, ``halted``, ``closed`` or
   ``decided``).  Re-checking the guard (e.g. ``if r != self.round:
   return``) clears the taint.

3. **Orphaned tasks.**  ``loop.create_task(...)`` whose result is
   dropped (a bare expression statement) or assigned but never given an
   ``add_done_callback`` in the same function: when such a task dies,
   its exception is swallowed and the transport silently stops
   delivering.  Every spawned task must be retained *and* observed.

4. **Un-awaited sends.**  In an async function, a bare statement
   calling a known-awaitable I/O method (``drain``, ``sendall``,
   ``wait``, ``sleep``, ...) drops the awaitable: the bytes may never
   be flushed and backpressure is lost.

5. **Unbounded waits in the chaos orchestration layer**
   (``net/runtime.py`` / ``net/chaos.py`` only).  The chaos engine's
   whole purpose is to create the conditions — partitions, SIGSTOPped
   peers, crashed processes — under which a bare
   ``await reader.readline()`` / ``await event.wait()`` /
   ``await queue.get()`` blocks forever, turning a fault-injection run
   into a hung CI job.  Every such await must be bounded
   (``asyncio.wait_for``, or a method with its own internal deadline)
   or carry a ``# repro: noqa-RL005`` comment justifying why
   termination is otherwise guaranteed.

The protocol core is callback-driven (no ``async`` at all), so modes 1
and 2 keep it that way; modes 3-5 police the one place real
concurrency is allowed — the socket transport and its chaos harness.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..source import SourceFile
from . import Rule

__all__ = ["AsyncHygieneRule"]

_GUARD_FRAGMENTS = ("round", "epoch", "view", "halted", "closed", "decided")
_STATE_BASES = {"self", "state"}

# Methods/functions that return awaitables; calling one as a bare
# statement inside ``async def`` silently drops the awaitable.
_AWAITABLE_CALLS = {
    "drain",
    "sendall",
    "sleep",
    "wait",
    "wait_for",
    "wait_closed",
    "gather",
    "serve_forever",
    "start_serving",
    "open_connection",
}

# Mode 5: awaitables that block until *the network or another process*
# produces something, and therefore block forever under an injected
# fault unless bounded.  ``asyncio.wait_for``-wrapped calls are awaits
# on ``wait_for`` itself, so they are naturally exempt.
_UNBOUNDED_READ_CALLS = {
    "read",
    "readline",
    "readexactly",
    "readuntil",
    "wait",
    "get",
}

# Where mode 5 applies: the chaos orchestration layer.  The transport
# itself (net/transport.py) is deliberately excluded — its reader loops
# are bounded by connection lifetime, which the chaos plan controls.
_UNBOUNDED_READ_SCOPE = ("net/runtime.py", "net/chaos.py")


def _async_def_names(tree: ast.Module) -> set[str]:
    return {node.name for node in ast.walk(tree) if isinstance(node, ast.AsyncFunctionDef)}


def _called_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _local_called_name(call: ast.Call) -> str | None:
    """The called name, only when it can resolve to a same-module
    ``async def``: a bare name or a ``self.``/``state.`` method.  An
    arbitrary receiver (``writer.close()``) may be a foreign sync method
    that merely shares its name with a local coroutine."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if (
        isinstance(call.func, ast.Attribute)
        and isinstance(call.func.value, ast.Name)
        and call.func.value.id in _STATE_BASES
    ):
        return call.func.attr
    return None


def _mentions_guard(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and any(frag in name.lower() for frag in _GUARD_FRAGMENTS):
            return True
    return False


def _contains_await(node: ast.AST) -> bool:
    return any(isinstance(sub, ast.Await) for sub in ast.walk(node))


def _shared_state_target(node: ast.AST) -> ast.Attribute | None:
    """An assignment target of the form ``self.x`` / ``state.x``."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in _STATE_BASES
        ):
            return target
    return None


def _own_nodes(func: ast.AST):
    """Every node belonging to ``func`` itself, not to nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _task_target_key(target: ast.expr) -> tuple | None:
    """A comparable identity for a task-holding variable or attribute."""
    if isinstance(target, ast.Name):
        return ("name", target.id)
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
        return ("attr", target.value.id, target.attr)
    return None


class AsyncHygieneRule(Rule):
    rule_id = "RL005"
    summary = "async hygiene: dropped coroutines/tasks, unguarded post-await writes"
    scope = (
        "core/",
        "smr/",
        "net/transport.py",
        "net/runtime.py",
        "net/chaos.py",
        "net/checkers.py",
    )

    def check(self, source: SourceFile) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        async_names = _async_def_names(source.tree)

        if async_names:
            for node in ast.walk(source.tree):
                if (
                    isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and _local_called_name(node.value) in async_names
                ):
                    diagnostics.append(
                        self.diagnostic(
                            source,
                            node.lineno,
                            node.col_offset,
                            f"coroutine {_local_called_name(node.value)}(...) is "
                            "never awaited; its body will not run",
                            hint="await the call (or schedule it explicitly as a task)",
                        )
                    )

        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_tasks(source, node, diagnostics)
            if isinstance(node, ast.AsyncFunctionDef):
                self._scan_bare_awaitables(source, node, diagnostics)
                self._scan_async_body(source, node.body, awaited=False, out=diagnostics)
        if any(
            source.relpath == prefix or source.relpath.startswith(prefix)
            for prefix in _UNBOUNDED_READ_SCOPE
        ):
            self._scan_unbounded_reads(source, diagnostics)
        diagnostics.sort(key=Diagnostic.sort_key)
        return diagnostics

    def _scan_unbounded_reads(
        self, source: SourceFile, out: list[Diagnostic]
    ) -> None:
        """Mode 5: every await on a network/process read is bounded."""
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Await)
                and isinstance(node.value, ast.Call)
                and _called_name(node.value) in _UNBOUNDED_READ_CALLS
            ):
                name = _called_name(node.value)
                out.append(
                    self.diagnostic(
                        source,
                        node.value.lineno,
                        node.value.col_offset,
                        f"`await ...{name}(...)` has no timeout; under an "
                        "injected fault (partition, SIGSTOP, crash) this wait "
                        "never returns and the chaos run hangs",
                        hint=(
                            "wrap in asyncio.wait_for(..., timeout) or justify "
                            "with `# repro: noqa-RL005 <reason>`"
                        ),
                    )
                )

    def _scan_tasks(
        self, source: SourceFile, func: ast.AST, out: list[Diagnostic]
    ) -> None:
        """Mode 3: every created task is retained and observed."""
        created: list[tuple[ast.stmt, tuple]] = []
        observed: set[tuple] = set()
        for node in _own_nodes(func):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and _called_name(node.value) == "create_task"
            ):
                out.append(
                    self.diagnostic(
                        source,
                        node.lineno,
                        node.col_offset,
                        "create_task(...) result is dropped; a failure of this "
                        "task would be silently swallowed",
                        hint="assign the task and attach an add_done_callback",
                    )
                )
            elif (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and _called_name(node.value) == "create_task"
            ):
                for target in node.targets:
                    key = _task_target_key(target)
                    if key is not None:
                        created.append((node, key))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_done_callback"
            ):
                key = _task_target_key(node.func.value)
                if key is not None:
                    observed.add(key)
        for node, key in created:
            if key not in observed:
                out.append(
                    self.diagnostic(
                        source,
                        node.lineno,
                        node.col_offset,
                        f"task '{key[-1]}' has no add_done_callback in this "
                        "function; its exception would never be observed",
                        hint="attach an add_done_callback that retrieves the result",
                    )
                )

    def _scan_bare_awaitables(
        self, source: SourceFile, func: ast.AsyncFunctionDef, out: list[Diagnostic]
    ) -> None:
        """Mode 4: no un-awaited sends inside async functions."""
        for node in _own_nodes(func):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and _called_name(node.value) in _AWAITABLE_CALLS
            ):
                name = _called_name(node.value)
                out.append(
                    self.diagnostic(
                        source,
                        node.lineno,
                        node.col_offset,
                        f"{name}(...) returns an awaitable that is dropped; the "
                        "send may never complete and backpressure is lost",
                        hint=f"write `await ...{name}(...)`",
                    )
                )

    def _scan_async_body(
        self,
        source: SourceFile,
        body: list[ast.stmt],
        awaited: bool,
        out: list[Diagnostic],
    ) -> bool:
        """Linear taint scan; returns whether an await has happened."""
        for stmt in body:
            if isinstance(stmt, ast.If) and _mentions_guard(stmt.test):
                # The handler re-checked its round/epoch guard: writes
                # below (and inside) are considered re-validated.
                for branch in (stmt.body, stmt.orelse):
                    self._scan_async_body(source, branch, awaited=False, out=out)
                awaited = _contains_await(stmt) or False
                continue
            target = _shared_state_target(stmt)
            if target is not None and awaited:
                out.append(
                    self.diagnostic(
                        source,
                        stmt.lineno,
                        stmt.col_offset,
                        f"shared protocol state '{ast.unparse(target)}' is mutated "
                        "after an await without re-checking the round/epoch guard",
                        hint=(
                            "re-validate the guard after resuming (e.g. "
                            "`if r != self.round: return`) before writing"
                        ),
                    )
                )
            if _contains_await(stmt):
                awaited = True
            # Recurse into nested compound statements with the current taint.
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if isinstance(sub, list) and sub and not isinstance(stmt, ast.FunctionDef):
                    awaited = self._scan_async_body(source, sub, awaited=awaited, out=out) or awaited
        return awaited
