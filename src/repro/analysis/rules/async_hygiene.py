"""RL005 — async hygiene in protocol handlers.

Two failure modes (``core/`` and ``smr/``):

1. **Un-awaited coroutines.**  A bare statement ``self.flush(ctx)``
   where ``flush`` is an ``async def`` creates a coroutine object and
   drops it — the body never runs.  Flagged when the called name is an
   ``async def`` defined in the same module (the only case decidable
   without type inference).

2. **State mutation after ``await`` without re-checking the guard.**
   Every ``await`` is a scheduling point: by the time the handler
   resumes, other messages may have advanced the round/epoch/view, so
   writes to shared protocol state (``self.*`` / ``state.*``) based on
   pre-await reasoning can clobber newer state.  Flagged when an async
   function assigns to such an attribute after an ``await`` with no
   intervening conditional that mentions a guard variable (a name
   containing ``round``, ``epoch``, ``view``, ``halted``, ``closed`` or
   ``decided``).  Re-checking the guard (e.g. ``if r != self.round:
   return``) clears the taint.

The current simulator core is callback-driven (no ``async`` at all),
so this rule protects the planned asyncio transport: violations cannot
creep in unnoticed once real network backends land.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..source import SourceFile
from . import Rule

__all__ = ["AsyncHygieneRule"]

_GUARD_FRAGMENTS = ("round", "epoch", "view", "halted", "closed", "decided")
_STATE_BASES = {"self", "state"}


def _async_def_names(tree: ast.Module) -> set[str]:
    return {node.name for node in ast.walk(tree) if isinstance(node, ast.AsyncFunctionDef)}


def _called_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _mentions_guard(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and any(frag in name.lower() for frag in _GUARD_FRAGMENTS):
            return True
    return False


def _contains_await(node: ast.AST) -> bool:
    return any(isinstance(sub, ast.Await) for sub in ast.walk(node))


def _shared_state_target(node: ast.AST) -> ast.Attribute | None:
    """An assignment target of the form ``self.x`` / ``state.x``."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in _STATE_BASES
        ):
            return target
    return None


class AsyncHygieneRule(Rule):
    rule_id = "RL005"
    summary = "async hygiene: dropped coroutines, unguarded post-await writes"
    scope = ("core/", "smr/")

    def check(self, source: SourceFile) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        async_names = _async_def_names(source.tree)

        if async_names:
            for node in ast.walk(source.tree):
                if (
                    isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and _called_name(node.value) in async_names
                ):
                    diagnostics.append(
                        self.diagnostic(
                            source,
                            node.lineno,
                            node.col_offset,
                            f"coroutine {_called_name(node.value)}(...) is never "
                            "awaited; its body will not run",
                            hint="await the call (or schedule it explicitly as a task)",
                        )
                    )

        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                self._scan_async_body(source, node.body, awaited=False, out=diagnostics)
        diagnostics.sort(key=Diagnostic.sort_key)
        return diagnostics

    def _scan_async_body(
        self,
        source: SourceFile,
        body: list[ast.stmt],
        awaited: bool,
        out: list[Diagnostic],
    ) -> bool:
        """Linear taint scan; returns whether an await has happened."""
        for stmt in body:
            if isinstance(stmt, ast.If) and _mentions_guard(stmt.test):
                # The handler re-checked its round/epoch guard: writes
                # below (and inside) are considered re-validated.
                for branch in (stmt.body, stmt.orelse):
                    self._scan_async_body(source, branch, awaited=False, out=out)
                awaited = _contains_await(stmt) or False
                continue
            target = _shared_state_target(stmt)
            if target is not None and awaited:
                out.append(
                    self.diagnostic(
                        source,
                        stmt.lineno,
                        stmt.col_offset,
                        f"shared protocol state '{ast.unparse(target)}' is mutated "
                        "after an await without re-checking the round/epoch guard",
                        hint=(
                            "re-validate the guard after resuming (e.g. "
                            "`if r != self.round: return`) before writing"
                        ),
                    )
                )
            if _contains_await(stmt):
                awaited = True
            # Recurse into nested compound statements with the current taint.
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if isinstance(sub, list) and sub and not isinstance(stmt, ast.FunctionDef):
                    awaited = self._scan_async_body(source, sub, awaited=awaited, out=out) or awaited
        return awaited
