"""RL006/RL007 — whole-program taint and handler-reachability rules.

RL006 enforces the paper's cross-cutting safety invariant (Sections 3.3
and 4): every value a replica *acts on* — state-machine operations,
checkpoint/journal contents, anything it threshold-signs, membership of
a quorum-counted set — arrives from a potentially Byzantine peer and
must first pass a verified gate.  It runs the
:mod:`repro.analysis.dataflow` engine over the call graph built by
:mod:`repro.analysis.project` with the catalogue below and reports
every ungated source → sink path, rendered as the chain of calls the
taint travelled.

RL007 closes the loop on the wire registry (the whole-program upgrade
of RL004): a message type that is registered and sent must have a
dispatch site *reachable* from a protocol entry point, and no reachable
handler may dispatch on a project message type that was never
registered — such a message can exist in the in-process simulator but
can never arrive over real bytes (``net/wire.py``).
"""

from __future__ import annotations

import ast

from ..dataflow import TaintAnalysis, TaintCatalog, TaintPath
from ..diagnostics import Diagnostic, Severity
from ..project import ProjectGraph, walk_function_body
from ..source import SourceFile
from . import Rule
from .messages import _registered_names, _sent_names

__all__ = ["TaintFlowRule", "HandlerReachabilityRule", "DEFAULT_CATALOG"]

# The RL002 verified-gate catalogue plus the quorum predicates and the
# constant-time digest comparison used on the checkpoint path.
_SANITIZERS = frozenset(
    {
        "verify",
        "verify_share",
        "verify_shares",
        "verify_proof",
        "verify_batch",
        "verify_dleq",
        "verify_dleq_batch",
        "combine",
        "check",
        "is_quorum",
        "is_strong_quorum",
        "contains_honest",
        "compare_digest",
    }
)

_QUORUM_PREDICATES = frozenset({"is_quorum", "is_strong_quorum", "contains_honest"})

DEFAULT_CATALOG = TaintCatalog(
    source_calls=frozenset({"loads"}),
    source_methods=frozenset({"on_message"}),
    source_param_names=frozenset({"message", "payload", "msg", "data", "raw"}),
    sanitizers=_SANITIZERS,
    sink_calls={
        "apply": "state-machine apply",
        "sign_share": "outbound threshold signing",
        "write_checkpoint": "checkpoint write",
    },
    sink_write_receivers=frozenset({"journal"}),
    source_call_paths=frozenset({"net/wire.py", "smr/codec.py"}),
    source_receivers=frozenset({"wire", "codec"}),
)


def _called_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return ""


def _self_fields(expr: ast.expr, cls: str) -> set[tuple[str, str]]:
    found: set[tuple[str, str]] = set()
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            found.add((cls, node.attr))
    return found


def _quorum_tracked_fields(graph: ProjectGraph) -> set[tuple[str, str]]:
    """``(class, attr)`` fields whose contents feed a quorum predicate.

    Inserting an unverified sender/share into one of these corrupts the
    quorum count itself (Section 3.3), so RL006 treats ungated tainted
    stores into them as sinks.  Includes a one-level backward slice:
    ``supporters = set(self.votes); ctx.quorum.is_quorum(supporters)``
    still marks ``votes``.
    """
    fields: set[tuple[str, str]] = set()
    for fn in graph.functions.values():
        if fn.cls is None or isinstance(fn.node, ast.Lambda):
            continue
        local_fields: dict[str, set[tuple[str, str]]] = {}
        for node in walk_function_body(fn.node):
            if isinstance(node, ast.Assign):
                value_fields = _self_fields(node.value, fn.cls)
                if value_fields:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local_fields.setdefault(target.id, set()).update(
                                value_fields
                            )
        for node in walk_function_body(fn.node):
            if isinstance(node, ast.Call) and _called_name(node) in _QUORUM_PREDICATES:
                for arg in node.args:
                    fields |= _self_fields(arg, fn.cls)
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name):
                            fields |= local_fields.get(sub.id, set())
    return fields


def _render_chain(finding: TaintPath) -> str:
    hops = list(finding.chain)
    if not hops:
        return "tainted input"
    if len(hops) > 4:  # keep the diagnostic line readable
        hops = [hops[0], f"... {len(hops) - 2} more hops ...", hops[-1]]
    return "; then ".join(hops)


class TaintFlowRule(Rule):
    rule_id = "RL006"
    severity = Severity.ERROR
    summary = "unverified Byzantine input reaches a protected sink"
    hint = (
        "gate the flow with a verify*/combine/quorum check before the sink, "
        "or baseline it with the protocol argument that makes it safe"
    )
    scope = ("core/", "smr/", "net/")
    project_wide = True

    catalog: TaintCatalog = DEFAULT_CATALOG

    def check_project(self, sources: list[SourceFile]) -> list[Diagnostic]:
        graph = ProjectGraph.build(sources)
        analysis = TaintAnalysis.run(graph, self.catalog)
        findings = analysis.sink_findings()
        findings.extend(analysis.store_findings(_quorum_tracked_fields(graph)))

        by_relpath = {source.relpath: source for source in sources}
        diagnostics: list[Diagnostic] = []
        seen: set[tuple[str, int, int, str]] = set()
        for finding in findings:
            fn = graph.functions[finding.hit.qualname]
            source = by_relpath.get(fn.relpath)
            if source is None or not self.applies_to(fn.relpath):
                continue
            key = (fn.relpath, finding.hit.line, finding.hit.col, finding.hit.kind)
            if key in seen:
                continue
            seen.add(key)
            diagnostics.append(
                self.diagnostic(
                    source,
                    finding.hit.line,
                    finding.hit.col,
                    f"unverified network input reaches {finding.hit.kind} "
                    f"({finding.hit.sink}): {_render_chain(finding)}",
                )
            )
        diagnostics.sort(key=Diagnostic.sort_key)
        return diagnostics


class HandlerReachabilityRule(Rule):
    rule_id = "RL007"
    severity = Severity.ERROR
    summary = "wire-registered message without reachable handler, or vice versa"
    hint = (
        "register the dispatched type in net/wire.py, or make the handler "
        "reachable from an on_message/on_start entry point"
    )
    scope = ("core/", "smr/", "net/")
    project_wide = True

    # Entry points external code drives: protocol lifecycle hooks plus
    # every public (non-underscore) function or method.
    _ENTRY_NAMES = frozenset({"on_message", "on_start"})

    def check_project(self, sources: list[SourceFile]) -> list[Diagnostic]:
        graph = ProjectGraph.build(sources)
        registered = _registered_names(sources)
        sent = _sent_names(sources)
        by_relpath = {source.relpath: source for source in sources}
        project_classes = set(graph.classes)

        roots = [
            qualname
            for qualname, fn in graph.functions.items()
            if fn.name in self._ENTRY_NAMES
            or (fn.name and not fn.name.startswith("_"))
        ]
        reachable = graph.reachable_from(roots)

        # name -> dispatch sites: (qualname, relpath, line, col)
        dispatch_sites: dict[str, list[tuple[str, str, int, int]]] = {}
        for qualname, fn in graph.functions.items():
            if isinstance(fn.node, ast.Lambda):
                continue
            for node in walk_function_body(fn.node):
                names: list[tuple[str, int, int]] = []
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2
                ):
                    spec = node.args[1]
                    candidates = (
                        spec.elts if isinstance(spec, (ast.Tuple, ast.List)) else [spec]
                    )
                    for cand in candidates:
                        if isinstance(cand, ast.Name):
                            names.append((cand.id, node.lineno, node.col_offset))
                        elif isinstance(cand, ast.Attribute):
                            names.append((cand.attr, node.lineno, node.col_offset))
                elif isinstance(node, ast.MatchClass):
                    cls = node.cls
                    if isinstance(cls, ast.Name):
                        names.append((cls.id, node.lineno, node.col_offset))
                    elif isinstance(cls, ast.Attribute):
                        names.append((cls.attr, node.lineno, node.col_offset))
                for name, line, col in names:
                    dispatch_sites.setdefault(name, []).append(
                        (qualname, fn.relpath, line, col)
                    )

        diagnostics: list[Diagnostic] = []

        # A registered+sent message whose every dispatch site sits in
        # dead code can never actually be handled (warning: the code may
        # be exercised by tests only).
        for name in sorted(registered & sent):
            sites = dispatch_sites.get(name, [])
            if not sites:
                continue  # RL004 already reports "no handler at all"
            if any(qualname in reachable for qualname, _, _, _ in sites):
                continue
            qualname, relpath, line, col = sites[0]
            source = by_relpath.get(relpath)
            if source is None or not self.applies_to(relpath):
                continue
            diagnostics.append(
                self.diagnostic(
                    source,
                    line,
                    col,
                    f"every handler for registered message {name} is unreachable "
                    "from protocol entry points (on_message/on_start/public API)",
                    severity=Severity.WARNING,
                )
            )

        # A reachable handler dispatching on a project message type that
        # is sent but never registered: works in the in-process
        # simulator, silently undecodable over the TCP transport.
        for name in sorted(set(dispatch_sites) & project_classes):
            if name in registered or name not in sent:
                continue
            for qualname, relpath, line, col in dispatch_sites[name]:
                if qualname not in reachable:
                    continue
                source = by_relpath.get(relpath)
                if source is None or not self.applies_to(relpath):
                    continue
                diagnostics.append(
                    self.diagnostic(
                        source,
                        line,
                        col,
                        f"reachable handler dispatches on {name}, which is sent "
                        "but never registered with the wire codec (net/wire.py)",
                    )
                )

        diagnostics.sort(key=Diagnostic.sort_key)
        return diagnostics
