"""RL002 — discarded ``verify()`` / ``combine()`` results.

Every certificate, signature share and threshold-combination check in
the stack returns a value that must *gate* protocol progress (deliver
only on a verified certificate, count only verified shares — Sections
3.3-3.5).  A bare statement ``key.verify(statement, sig)`` runs the
check and throws the answer away: the classic SecureSMART-style seam
where a BFT implementation silently stops being Byzantine-tolerant.

Flagged: expression statements whose value is a call to a function or
method named ``verify``, ``verify_share``, ``verify_shares``,
``verify_proof``, ``verify_batch``, ``verify_dleq``,
``verify_dleq_batch``, ``combine`` or ``check`` inside ``core/``,
``crypto/`` and ``smr/``.  The batch entry points return the set of
valid shares (or the batch verdict) and are verified-gates exactly like
their per-share counterparts: dropping their result silently un-gates a
whole quorum at once.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..source import SourceFile
from . import Rule

__all__ = ["DiscardedResultRule"]

_CHECKED_NAMES = {
    "verify",
    "verify_share",
    "verify_shares",
    "verify_proof",
    "verify_batch",
    "verify_dleq",
    "verify_dleq_batch",
    "combine",
    "check",
}


def _called_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


class DiscardedResultRule(Rule):
    rule_id = "RL002"
    summary = "discarded verify()/combine() return value"
    hint = (
        "use the result to gate progress (e.g. `if not key.verify(...): return`) "
        "or assign it; a verification whose answer is ignored protects nothing"
    )
    scope = ("core/", "crypto/", "smr/")

    def check(self, source: SourceFile) -> list[Diagnostic]:
        diagnostics = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
                continue
            name = _called_name(node.value)
            if name in _CHECKED_NAMES:
                diagnostics.append(
                    self.diagnostic(
                        source,
                        node.lineno,
                        node.col_offset,
                        f"return value of {name}() is discarded; verification must "
                        "gate protocol progress",
                    )
                )
        diagnostics.sort(key=Diagnostic.sort_key)
        return diagnostics
