"""RL008/RL009 — async interleaving hazards over the effect summaries.

PR 6 made the deployment concurrent: ``pipeline_depth`` atomic-broadcast
rounds in flight, an asyncio TCP transport with per-peer reconnect and
retransmit tasks, open-loop clients.  The model's safety argument
(Section 2's asynchronous authenticated links feeding Section 3's
protocols) survives arbitrary *network* interleavings — but only if an
honest party never corrupts its own state across a suspension point.
These two rules make that mechanical:

**RL008 (stale-read-across-await)** — an async function reads shared
mutable state, suspends (``await`` / ``async for`` / ``async with``),
then writes state derived from the pre-suspension read without
re-validating.  Detected interprocedurally over
:class:`~repro.analysis.effects.EffectAnalysis`: the read may happen
inside a sync helper whose return value carries the cell, and the write
inside a sync helper that receives the stale value as an argument.  A
fresh read of the cell in an ``if``/``while``/``assert`` test after the
suspension (the ``if cached is not self.x: return`` re-check idiom)
re-validates it.

**RL009 (unowned mutable handoff)** — ownership of a mutable object
must transfer at a concurrency seam.  Two shapes:

* a mutable local (list/dict/set/bytearray/deque literal or
  constructor) is passed into ``asyncio.create_task`` /
  ``ensure_future`` / ``loop.run_in_executor`` / an executor's
  ``submit``/``map`` and then mutated by the caller after the handoff —
  the new task observes (or, across the process-pool pickling seam,
  silently misses) the caller's later mutations;
* round-scoped protocol state in a pipelined class (one that consults
  ``pipeline_depth``) is stored in a plain, un-keyed attribute: with
  more than one round in flight, concurrent rounds clobber each other.
  Round-keyed containers (``self.proposals[r] = ...``) are the correct
  shape and are not flagged.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic, Severity
from ..effects import EffectAnalysis, format_cell
from ..project import FunctionInfo, ProjectGraph, walk_function_body
from ..source import SourceFile
from . import Rule

__all__ = ["StaleReadAcrossAwaitRule", "UnownedMutableHandoffRule"]

# Concurrency seams that move a callable (and its captured arguments)
# onto another task or process.
_TASK_SPAWNERS = frozenset({"create_task", "ensure_future", "run_in_executor"})
_POOL_METHODS = frozenset({"submit", "map"})
_POOL_RECEIVER_FRAGMENTS = ("pool", "executor")

# Constructors that produce a caller-owned mutable object.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter"}
)

_CONTAINER_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "discard", "add", "clear",
        "update", "pop", "popitem", "setdefault", "popleft", "appendleft",
        "sort", "reverse",
    }
)

# Copying constructors: an object passed through one of these is a
# fresh copy, so the caller keeps ownership of the original.
_COPY_CALLS = frozenset({"list", "dict", "set", "tuple", "sorted", "frozenset", "bytes"})

# Monotone round cursors a pipelined class legitimately keeps un-keyed.
_ROUND_CURSORS = frozenset({"round", "highest_started"})

_ROUND_PARAM_NAMES = frozenset({"r", "rnd", "round_number"})


def _called_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return ""


def _handed_names(node: ast.AST) -> list[ast.Name]:
    """Loaded names inside a handoff call, skipping copying calls —
    ``create_task(f(list(work)))`` hands off a copy, not ``work``."""
    out: list[ast.Name] = []
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if (
            current is not node
            and isinstance(current, ast.Call)
            and (_called_name(current) in _COPY_CALLS or (
                isinstance(current.func, ast.Attribute)
                and current.func.attr == "copy"
            ))
        ):
            continue
        if isinstance(current, ast.Name) and isinstance(current.ctx, ast.Load):
            out.append(current)
        stack.extend(ast.iter_child_nodes(current))
    return out


class StaleReadAcrossAwaitRule(Rule):
    rule_id = "RL008"
    severity = Severity.ERROR
    summary = "shared state read before an await is written back after it"
    hint = (
        "re-read (or re-validate with an if/assert on the cell) after the "
        "await before writing, or baseline with the argument that makes "
        "the interleaving safe"
    )
    scope = ("core/", "smr/", "net/")
    project_wide = True

    def check_project(self, sources: list[SourceFile]) -> list[Diagnostic]:
        graph = ProjectGraph.build(sources)
        analysis = EffectAnalysis.run(graph)
        by_relpath = {source.relpath: source for source in sources}
        diagnostics: list[Diagnostic] = []
        for hazard in analysis.stale_write_hazards():
            source = by_relpath.get(hazard.relpath)
            if source is None or not self.applies_to(hazard.relpath):
                continue
            cell = format_cell(hazard.cell)
            if hazard.kind == "alias":
                message = (
                    f"object obtained from {cell} at line {hazard.read_line} "
                    f"is mutated after the suspension at line "
                    f"{hazard.suspend_line}; the container may have been "
                    "replaced mid-await, so this writes to an orphaned object"
                )
            elif hazard.kind == "helper":
                message = (
                    f"{cell} read at line {hazard.read_line} is written back "
                    f"via {hazard.detail or 'a helper'}() after the "
                    f"suspension at line {hazard.suspend_line} without "
                    "re-validation"
                )
            else:
                message = (
                    f"{cell} read at line {hazard.read_line} is written back "
                    f"after the suspension at line {hazard.suspend_line} "
                    "without re-validation (lost-update interleaving)"
                )
            diagnostics.append(
                self.diagnostic(
                    source, hazard.write_line, hazard.write_col, message
                )
            )
        diagnostics.sort(key=Diagnostic.sort_key)
        return diagnostics


class UnownedMutableHandoffRule(Rule):
    rule_id = "RL009"
    severity = Severity.ERROR
    summary = "mutable object mutated after handoff, or un-keyed round state"
    hint = (
        "copy the object at the handoff (or stop mutating it afterwards); "
        "key round-scoped state by round number while pipelining"
    )
    scope = ("core/", "smr/", "net/", "analysis/")
    project_wide = True

    def check_project(self, sources: list[SourceFile]) -> list[Diagnostic]:
        graph = ProjectGraph.build(sources)
        by_relpath = {source.relpath: source for source in sources}
        diagnostics: list[Diagnostic] = []
        for qualname, fn in graph.functions.items():
            if isinstance(fn.node, ast.Lambda):
                continue
            source = by_relpath.get(fn.relpath)
            if source is None or not self.applies_to(fn.relpath):
                continue
            diagnostics.extend(self._check_handoffs(source, fn))
        diagnostics.extend(self._check_round_keying(graph, by_relpath))
        diagnostics.sort(key=Diagnostic.sort_key)
        return diagnostics

    # -- shape 1: mutate-after-handoff --------------------------------------

    def _check_handoffs(
        self, source: SourceFile, fn: FunctionInfo
    ) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        mutable: set[str] = set()  # locals bound to caller-owned mutables
        handed: dict[str, int] = {}  # local -> handoff line
        reported: set[tuple[int, int, str]] = set()

        def is_mutable_value(value: ast.expr) -> bool:
            if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                  ast.SetComp, ast.DictComp)):
                return True
            if isinstance(value, ast.Call):
                return _called_name(value) in _MUTABLE_CONSTRUCTORS
            return False

        def is_handoff(call: ast.Call) -> bool:
            name = _called_name(call)
            if name in _TASK_SPAWNERS:
                return True
            if name in _POOL_METHODS and isinstance(call.func, ast.Attribute):
                receiver = call.func.value
                text = ""
                if isinstance(receiver, ast.Name):
                    text = receiver.id
                elif isinstance(receiver, ast.Attribute):
                    text = receiver.attr
                return any(f in text.lower() for f in _POOL_RECEIVER_FRAGMENTS)
            return False

        def flag(name: str, line: int, col: int, how: str) -> None:
            key = (line, col, name)
            if key in reported:
                return
            reported.add(key)
            out.append(
                self.diagnostic(
                    source,
                    line,
                    col,
                    f"{name} was handed to a concurrent task at line "
                    f"{handed[name]} and is mutated by the caller afterwards "
                    f"({how}); the task no longer owns a stable view of it",
                )
            )

        def visit(stmts: list[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                # Mutations of handed-off locals.
                for node in ast.walk(stmt):
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                         ast.Lambda)):
                        continue
                    if isinstance(node, ast.Call):
                        func = node.func
                        if (
                            isinstance(func, ast.Attribute)
                            and func.attr in _CONTAINER_MUTATORS
                            and isinstance(func.value, ast.Name)
                            and func.value.id in handed
                        ):
                            flag(func.value.id, node.lineno, node.col_offset,
                                 f"{func.attr}()")
                        if is_handoff(node):
                            for sub in _handed_names(node):
                                if sub.id in mutable:
                                    handed.setdefault(sub.id, node.lineno)
                    elif isinstance(node, (ast.Subscript,)) and isinstance(
                        node.ctx, (ast.Store, ast.Del)
                    ):
                        base = node.value
                        if isinstance(base, ast.Name) and base.id in handed:
                            flag(base.id, node.lineno, node.col_offset,
                                 "item assignment")
                # Rebinding a local releases the handed-off object.
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            handed.pop(target.id, None)
                            mutable.discard(target.id)
                            if is_mutable_value(stmt.value):
                                mutable.add(target.id)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    handed.pop(stmt.target.id, None)
                    mutable.discard(stmt.target.id)
                    if stmt.value is not None and is_mutable_value(stmt.value):
                        mutable.add(stmt.target.id)
                for attr in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, attr, None)
                    if isinstance(inner, list) and inner and isinstance(
                        inner[0], ast.stmt
                    ):
                        visit(inner)
                for handler in getattr(stmt, "handlers", []):
                    visit(handler.body)

        body = fn.node.body
        # Two passes so a handoff late in a loop body meets a mutation
        # earlier in the next iteration.
        visit(body)
        visit(body)
        return out

    # -- shape 2: un-keyed round state in a pipelined class -----------------

    def _check_round_keying(
        self, graph: ProjectGraph, by_relpath: dict[str, SourceFile]
    ) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        # Classes that consult pipeline_depth run rounds concurrently.
        pipelined: set[str] = set()
        for fn in graph.functions.values():
            if fn.cls is None or isinstance(fn.node, ast.Lambda):
                continue
            for node in walk_function_body(fn.node):
                if isinstance(node, ast.Attribute) and node.attr == "pipeline_depth":
                    pipelined.add(fn.cls)
                    break

        for qualname, fn in graph.functions.items():
            if fn.cls not in pipelined or isinstance(fn.node, ast.Lambda):
                continue
            source = by_relpath.get(fn.relpath)
            if source is None or not self.applies_to(fn.relpath):
                continue
            data_params = {
                p for p in fn.params if p not in {"self", "ctx", "cls"}
            }
            round_vars = set(fn.params) & _ROUND_PARAM_NAMES
            derived: set[str] = set(data_params)
            # Locals assigned from a data param or from `<param>.round`.
            for _ in range(2):
                for node in walk_function_body(fn.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    names = {
                        sub.id
                        for sub in ast.walk(node.value)
                        if isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Load)
                    }
                    from_round_attr = any(
                        isinstance(sub, ast.Attribute)
                        and sub.attr == "round"
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id in data_params
                        for sub in ast.walk(node.value)
                    )
                    if names & derived or from_round_attr:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                derived.add(target.id)
                                if from_round_attr:
                                    round_vars.add(target.id)
            if not round_vars:
                continue  # not a per-round handler
            for node in walk_function_body(fn.node):
                if not isinstance(node, (ast.Assign, ast.AugAssign)):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                value_names = {
                    sub.id
                    for sub in ast.walk(value)
                    if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
                }
                if not (value_names & (derived | round_vars)):
                    continue  # not round-scoped data
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if target.attr in _ROUND_CURSORS:
                        continue
                    out.append(
                        self.diagnostic(
                            source,
                            node.lineno,
                            node.col_offset,
                            f"round-scoped value stored in un-keyed attribute "
                            f"self.{target.attr} while "
                            f"{fn.cls} pipelines rounds (pipeline_depth > 1 "
                            "lets concurrent rounds clobber it); key the "
                            "container by round number",
                        )
                    )
        return out
