"""RL003 — nondeterminism in protocol code (``core/`` and ``smr/``).

The protocol core must be a deterministic function of the delivered
message sequence: the simulator replays adversarial schedules (Section
2's asynchronous model — the scheduler *is* the adversary) and the SMR
layer requires replicas that execute the same log to reach the same
state.  All randomness must come from the scheduler-provided, seeded
``ctx.rng``; all time from the simulated clock.

Flagged:

* module-level ``random.*`` calls (``random.random()``,
  ``random.choice(...)`` ...).  Constructing a seeded generator with
  ``random.Random(seed)`` is the sanctioned pattern and is allowed;
* wall-clock reads: ``time.time/monotonic/perf_counter/*_ns``,
  ``datetime.now/utcnow/today``;
* ``dict.popitem()`` (pops an arrival-order-dependent entry);
* arrival-order-dependent iteration over ``dict``/``set`` state:
  ``for``-loops and order-*sensitive* comprehensions over
  ``.items()/.keys()/.values()`` (or ``set(...)``) that are not wrapped
  in ``sorted(...)``.  Set/dict comprehensions and order-insensitive
  reducers (``any``, ``all``, ``sum``, ``min``, ``max``, ``len``,
  ``sorted``, ``set``, ``frozenset``, ``dict``, ``Counter``) are
  exempt: their result does not depend on iteration order.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic
from ..source import SourceFile
from . import Rule

__all__ = ["DeterminismRule"]

_RANDOM_ALLOWED = {"Random", "SystemRandom"}
_TIME_ATTRS = {"time", "monotonic", "perf_counter", "time_ns", "monotonic_ns", "perf_counter_ns"}
_DATETIME_ATTRS = {"now", "utcnow", "today"}
_ORDER_INSENSITIVE_CONSUMERS = {
    "any",
    "all",
    "sum",
    "min",
    "max",
    "len",
    "sorted",
    "set",
    "frozenset",
    "dict",
    "Counter",
}
_VIEW_METHODS = {"items", "keys", "values"}


def _is_module_attr_call(call: ast.Call, module: str) -> str | None:
    """``module.attr(...)`` -> attr name, else None."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == module
    ):
        return func.attr
    return None


def _is_unsorted_view(node: ast.expr) -> bool:
    """Iterating a dict view / ``set(...)`` directly, not via sorted()."""
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) and node.func.attr in _VIEW_METHODS:
            return True
        if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
            return True
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return False


class DeterminismRule(Rule):
    rule_id = "RL003"
    summary = "nondeterminism in protocol code"
    scope = ("core/", "smr/")

    def check(self, source: SourceFile) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        exempt_comprehensions = self._order_insensitive_nodes(source.tree)

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                self._check_call(source, node, diagnostics)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_unsorted_view(node.iter):
                    diagnostics.append(
                        self._iteration_diag(source, node.iter)
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if id(node) in exempt_comprehensions:
                    continue
                for comp in node.generators:
                    if _is_unsorted_view(comp.iter):
                        diagnostics.append(self._iteration_diag(source, comp.iter))
        diagnostics.sort(key=Diagnostic.sort_key)
        return diagnostics

    def _iteration_diag(self, source: SourceFile, node: ast.expr) -> Diagnostic:
        return self.diagnostic(
            source,
            node.lineno,
            node.col_offset,
            "iteration order over dict/set protocol state depends on message "
            "arrival order",
            hint=(
                "iterate sorted(...) (party ids are sortable) or consume the "
                "iteration with an order-insensitive reducer"
            ),
        )

    def _check_call(
        self, source: SourceFile, call: ast.Call, diagnostics: list[Diagnostic]
    ) -> None:
        attr = _is_module_attr_call(call, "random")
        if attr is not None and attr not in _RANDOM_ALLOWED:
            diagnostics.append(
                self.diagnostic(
                    source,
                    call.lineno,
                    call.col_offset,
                    f"random.{attr}() uses the shared module RNG",
                    hint="use the scheduler-provided deterministic ctx.rng",
                )
            )
            return
        attr = _is_module_attr_call(call, "time")
        if attr in _TIME_ATTRS:
            diagnostics.append(
                self.diagnostic(
                    source,
                    call.lineno,
                    call.col_offset,
                    f"time.{attr}() reads the wall clock",
                    hint="protocol code must take time from the simulated scheduler clock",
                )
            )
            return
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _DATETIME_ATTRS:
            base = func.value
            base_name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None
            )
            if base_name in {"datetime", "date"}:
                diagnostics.append(
                    self.diagnostic(
                        source,
                        call.lineno,
                        call.col_offset,
                        f"{base_name}.{func.attr}() reads the wall clock",
                        hint="protocol code must take time from the simulated scheduler clock",
                    )
                )
                return
        if isinstance(func, ast.Attribute) and func.attr == "popitem" and not call.args:
            diagnostics.append(
                self.diagnostic(
                    source,
                    call.lineno,
                    call.col_offset,
                    "dict.popitem() removes an arrival-order-dependent entry",
                    hint="pop an explicit, deterministically chosen key instead",
                )
            )

    @staticmethod
    def _order_insensitive_nodes(tree: ast.Module) -> set[int]:
        """ids of comprehension nodes fed to order-insensitive reducers."""
        exempt: set[int] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_INSENSITIVE_CONSUMERS
            ):
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                        exempt.add(id(arg))
        return exempt
