"""Tracked crypto/agreement benchmarks (``python -m repro bench``).

The paper's systems run their entire cryptographic load in software, so
modular exponentiation throughput decides end-to-end latency (the
SecureSMART cost profile).  This module measures the primitives this
repository accelerates — simultaneous multi-exponentiation, fixed-base
tables, Jacobi-symbol membership, and batched share verification — and
the n ∈ {4, 7, 16} agreement protocols end to end, writing the results
to ``BENCH_crypto.json`` so regressions are visible in review (see
docs/PERFORMANCE.md for how to read the numbers).

Every *legacy* figure is produced by a faithful replica of the pre-
acceleration code path (plain ``pow`` exponentiation, full-exponent
membership tests, per-share verification with modular inversions), so
speedups compare against what the tree actually shipped, not a straw
man.
"""

from __future__ import annotations

import json
import random
import time
from typing import Callable

from .crypto.accel import accel_for, multiexp
from .crypto.coin import CoinPublic, CoinShare, deal_coin
from .crypto.groups import SchnorrGroup, default_group
from .crypto.hashing import hash_to_exponent
from .crypto.lsss import threshold_scheme
from .crypto.numtheory import jacobi
from .crypto.schnorr import keygen, verify_batch
from .crypto.threshold_enc import deal_encryption
from .crypto.threshold_sig import deal_quorum_certs, deal_shoup_rsa
from .crypto.zkp import DleqProof

__all__ = ["run_benchmarks", "main"]

# The headline configuration from ISSUE tracking: a 16-server system
# tolerating 5 corruptions (quorums of t+1 = 6 open the coin).
_N, _T = 16, 5


def _time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time in seconds (best is least noisy)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


# -- the pre-acceleration replica ------------------------------------------------


def _legacy_exp(group: SchnorrGroup, base: int, e: int) -> int:
    return pow(base, e % group.q, group.p)


def _legacy_is_member(group: SchnorrGroup, a: int) -> bool:
    return 0 < a < group.p and pow(a, group.q, group.p) == 1


def _legacy_verify_dleq(
    group: SchnorrGroup,
    g: int, h1: int, u: int, h2: int,
    proof: DleqProof,
    context: object,
) -> bool:
    """The pre-PR per-share DLEQ check: four full-exponent membership
    tests, four exponentiations and two modular inversions."""
    p = group.p
    if not all(_legacy_is_member(group, x) for x in (g, h1, u, h2)):
        return False
    a1, a2, z = proof.commit1, proof.commit2, proof.response
    c = hash_to_exponent(group, "dleq", g, h1, u, h2, a1, a2, context)
    if _legacy_exp(group, g, z) * pow(_legacy_exp(group, h1, c), -1, p) % p != a1:
        return False
    return _legacy_exp(group, u, z) * pow(_legacy_exp(group, h2, c), -1, p) % p == a2


def _legacy_verify_coin_share(public: CoinPublic, share: CoinShare) -> bool:
    base = public.coin_base(share.name)
    return all(
        _legacy_verify_dleq(
            public.group,
            public.group.g,
            public.verification[slot],
            base,
            share.values[slot],
            share.proofs[slot],
            ("coin", share.name, slot),
        )
        for slot in share.values
    )


# -- microbenchmarks -------------------------------------------------------------


def _bench_primitives(group: SchnorrGroup, rng: random.Random, repeats: int) -> dict:
    p, q = group.p, group.q
    exponent = rng.randrange(1, q)
    element = group.random_element(rng)
    pairs = [
        (group.random_element(rng), rng.randrange(1, q)) for _ in range(8)
    ]
    accel = accel_for(group)
    for _ in range(64):  # let auto-tabling kick in for the fixed base
        accel.exp(element, exponent)

    t_pow = _time(lambda: pow(element, exponent, p), repeats * 50) * 1e6
    t_table = _time(lambda: accel.exp(element, exponent), repeats * 50) * 1e6
    t_naive_product = _time(
        lambda: [pow(b, e, p) for b, e in pairs], repeats * 10
    ) * 1e6
    t_multiexp = _time(lambda: multiexp(p, pairs), repeats * 10) * 1e6
    t_member_pow = _time(lambda: pow(element, q, p) == 1, repeats * 50) * 1e6
    t_member_jacobi = _time(lambda: jacobi(element, p) == 1, repeats * 50) * 1e6
    return {
        "pow_us": t_pow,
        "fixed_base_table_us": t_table,
        "fixed_base_speedup": t_pow / t_table,
        "naive_8_term_product_us": t_naive_product,
        "multiexp_8_term_us": t_multiexp,
        "multiexp_speedup": t_naive_product / t_multiexp,
        "membership_pow_us": t_member_pow,
        "membership_jacobi_us": t_member_jacobi,
        "membership_speedup": t_member_pow / t_member_jacobi,
    }


def _bench_coin_quorum(group: SchnorrGroup, rng: random.Random, repeats: int) -> dict:
    scheme = threshold_scheme(_N, _T, group.q)
    public, holders = deal_coin(group, scheme, rng)
    name = ("bench-coin", 1)
    quorum = [holders[party].share_for(name, rng) for party in sorted(holders)[: _T + 1]]

    def legacy() -> None:
        assert all(_legacy_verify_coin_share(public, s) for s in quorum)

    def per_share() -> None:
        assert all(public.verify_share(s) for s in quorum)

    def batch() -> None:
        assert len(public.verify_shares(name, quorum)) == len(quorum)

    batch()  # warm the accel tables and hash caches for all three paths
    t_legacy = _time(legacy, repeats) * 1e3
    t_per_share = _time(per_share, repeats) * 1e3
    t_batch = _time(batch, repeats) * 1e3
    return {
        "n": _N,
        "t": _T,
        "quorum_shares": len(quorum),
        "legacy_ms": t_legacy,
        "per_share_ms": t_per_share,
        "batch_ms": t_batch,
        "speedup_batch_vs_legacy": t_legacy / t_batch,
        "speedup_batch_vs_per_share": t_per_share / t_batch,
        "speedup_per_share_vs_legacy": t_legacy / t_per_share,
    }


def _bench_decryption_quorum(
    group: SchnorrGroup, rng: random.Random, repeats: int
) -> dict:
    scheme = threshold_scheme(_N, _T, group.q)
    public, holders = deal_encryption(group, scheme, rng)
    ct = public.encrypt(b"benchmark payload", b"label", rng)
    quorum = [
        holders[party].decryption_share(ct, rng)
        for party in sorted(holders)[: _T + 1]
    ]

    def per_share() -> None:
        assert all(public.verify_share(ct, s) for s in quorum)

    def batch() -> None:
        assert len(public.verify_shares(ct, quorum)) == len(quorum)

    batch()
    t_per_share = _time(per_share, repeats) * 1e3
    t_batch = _time(batch, repeats) * 1e3
    return {
        "n": _N,
        "t": _T,
        "quorum_shares": len(quorum),
        "per_share_ms": t_per_share,
        "batch_ms": t_batch,
        "speedup_batch_vs_per_share": t_per_share / t_batch,
    }


def _bench_rsa_quorum(rng: random.Random, repeats: int, bits: int) -> dict:
    public, holders = deal_shoup_rsa(_N, _T + 1, rng, bits=bits)
    message = ("bench-rsa", 1)
    quorum = [
        holders[party].sign_share(message, rng)
        for party in sorted(holders)[: _T + 1]
    ]

    def per_share() -> None:
        assert all(public.verify_share(message, s) for s in quorum)

    def batch() -> None:
        assert len(public.verify_shares(message, quorum)) == len(quorum)

    batch()
    t_per_share = _time(per_share, repeats) * 1e3
    t_batch = _time(batch, repeats) * 1e3
    return {
        "n": _N,
        "k": _T + 1,
        "modulus_bits": bits,
        "quorum_shares": len(quorum),
        "per_share_ms": t_per_share,
        "batch_ms": t_batch,
        "speedup_batch_vs_per_share": t_per_share / t_batch,
    }


def _bench_cert_quorum(group: SchnorrGroup, rng: random.Random, repeats: int) -> dict:
    keys = {party: keygen(rng, group) for party in range(_N)}
    public, holders = deal_quorum_certs(
        keys, qualifier=lambda signers: len(signers) >= _N - _T
    )
    message = ("bench-cert", 1)
    shares = {
        party: holders[party].sign_share(message, rng)
        for party in range(_N - _T)
    }
    items = [
        (public.verify_keys[party], (public.tag, message), sig)
        for party, sig in sorted(shares.items())
    ]

    def per_share() -> None:
        assert all(
            public.verify_share(message, (party, sig))
            for party, sig in shares.items()
        )

    def batch() -> None:
        assert verify_batch(group, items)

    batch()
    t_per_share = _time(per_share, repeats) * 1e3
    t_batch = _time(batch, repeats) * 1e3
    return {
        "n": _N,
        "quorum_shares": len(shares),
        "per_share_ms": t_per_share,
        "batch_ms": t_batch,
        "speedup_batch_vs_per_share": t_per_share / t_batch,
    }


# -- end-to-end agreement --------------------------------------------------------


# Benchmark system sizes with their maximal classical resilience.
_AGREEMENT_SIZES = {4: 1, 7: 2, 16: 5}


def _bench_agreement(n: int, seed: int, instances: int) -> dict:
    from .core.binary_agreement import BinaryAgreement, aba_session
    from .core.runtime import ProtocolRuntime
    from .crypto.dealer import deal_system
    from .net.scheduler import RandomScheduler
    from .net.simulator import Network

    t = _AGREEMENT_SIZES[n]
    rng = random.Random(seed)
    keys = deal_system(n, rng, t=t)
    network = Network(RandomScheduler(), random.Random(seed))
    runtimes = {}
    for party in range(n):
        runtime = ProtocolRuntime(
            party, network, keys.public, keys.private[party], seed=seed
        )
        network.attach(party, runtime)
        runtimes[party] = runtime

    start = time.perf_counter()
    decided = 0
    for tag in range(instances):
        session = aba_session(("bench", tag))
        for party, runtime in runtimes.items():
            runtime.spawn(session, BinaryAgreement(party % 2))
        network.run(
            max_steps=2_000_000,
            until=lambda: all(
                r.result(session) is not None for r in runtimes.values()
            ),
        )
        outputs = {r.result(session) for r in runtimes.values()}
        assert len(outputs) == 1 and None not in outputs
        decided += 1
    elapsed = time.perf_counter() - start
    return {
        "n": n,
        "t": t,
        "instances": decided,
        "total_s": elapsed,
        "per_instance_ms": elapsed / decided * 1e3,
        "messages_delivered": network.delivered_count,
    }


# -- driver ----------------------------------------------------------------------


def run_benchmarks(seed: int = 0, smoke: bool = False) -> dict:
    """Run the suite; ``smoke`` trims repeats for CI wiring checks."""
    rng = random.Random(seed)
    group = default_group()
    repeats = 1 if smoke else 5
    rsa_bits = 256 if smoke else 512
    agreement_sizes = [4] if smoke else [4, 7, 16]
    agreement_instances = 1 if smoke else 3

    results: dict = {
        "config": {
            "seed": seed,
            "smoke": smoke,
            "group_bits": group.p.bit_length(),
            "repeats": repeats,
        },
        "primitives": _bench_primitives(group, rng, repeats),
        "coin_quorum": _bench_coin_quorum(group, rng, repeats),
        "decryption_quorum": _bench_decryption_quorum(group, rng, repeats),
        "rsa_quorum": _bench_rsa_quorum(rng, repeats, rsa_bits),
        "cert_quorum": _bench_cert_quorum(group, rng, repeats),
        "agreement": {
            f"n{n}": _bench_agreement(n, seed, agreement_instances)
            for n in agreement_sizes
        },
    }
    return results


def main(seed: int, out: str, smoke: bool) -> int:
    results = run_benchmarks(seed=seed, smoke=smoke)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    coin = results["coin_quorum"]
    print(
        f"coin quorum (n={coin['n']}, t={coin['t']}): "
        f"legacy {coin['legacy_ms']:.2f}ms  "
        f"per-share {coin['per_share_ms']:.2f}ms  "
        f"batch {coin['batch_ms']:.2f}ms  "
        f"({coin['speedup_batch_vs_legacy']:.1f}x vs legacy)"
    )
    for label, section in results["agreement"].items():
        print(
            f"agreement {label}: {section['per_instance_ms']:.0f}ms/instance "
            f"({section['messages_delivered']} messages)"
        )
    print(f"wrote {out}")
    return 0
