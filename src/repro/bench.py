"""Tracked crypto/agreement benchmarks (``python -m repro bench``).

The paper's systems run their entire cryptographic load in software, so
modular exponentiation throughput decides end-to-end latency (the
SecureSMART cost profile).  This module measures the primitives this
repository accelerates — simultaneous multi-exponentiation, fixed-base
tables, Jacobi-symbol membership, and batched share verification — and
the n ∈ {4, 7, 16} agreement protocols end to end, writing the results
to ``BENCH_crypto.json`` so regressions are visible in review (see
docs/PERFORMANCE.md for how to read the numbers).

Every *legacy* figure is produced by a faithful replica of the pre-
acceleration code path (plain ``pow`` exponentiation, full-exponent
membership tests, per-share verification with modular inversions), so
speedups compare against what the tree actually shipped, not a straw
man.
"""

from __future__ import annotations

import json
import random
import time
from typing import Callable

from .crypto.accel import accel_for, multiexp
from .crypto.coin import CoinPublic, CoinShare, deal_coin
from .crypto.groups import SchnorrGroup, default_group
from .crypto.hashing import hash_to_exponent
from .crypto.lsss import threshold_scheme
from .crypto.numtheory import jacobi
from .crypto.schnorr import keygen, verify_batch
from .crypto.threshold_enc import deal_encryption
from .crypto.threshold_sig import deal_quorum_certs, deal_shoup_rsa
from .crypto.zkp import DleqProof

__all__ = ["run_benchmarks", "main", "guard_compare", "main_guard"]

# The headline configuration from ISSUE tracking: a 16-server system
# tolerating 5 corruptions (quorums of t+1 = 6 open the coin).
_N, _T = 16, 5


def _time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time in seconds (best is least noisy)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


# -- the pre-acceleration replica ------------------------------------------------


def _legacy_exp(group: SchnorrGroup, base: int, e: int) -> int:
    return pow(base, e % group.q, group.p)


def _legacy_is_member(group: SchnorrGroup, a: int) -> bool:
    return 0 < a < group.p and pow(a, group.q, group.p) == 1


def _legacy_verify_dleq(
    group: SchnorrGroup,
    g: int, h1: int, u: int, h2: int,
    proof: DleqProof,
    context: object,
) -> bool:
    """The pre-PR per-share DLEQ check: four full-exponent membership
    tests, four exponentiations and two modular inversions."""
    p = group.p
    if not all(_legacy_is_member(group, x) for x in (g, h1, u, h2)):
        return False
    a1, a2, z = proof.commit1, proof.commit2, proof.response
    c = hash_to_exponent(group, "dleq", g, h1, u, h2, a1, a2, context)
    if _legacy_exp(group, g, z) * pow(_legacy_exp(group, h1, c), -1, p) % p != a1:
        return False
    return _legacy_exp(group, u, z) * pow(_legacy_exp(group, h2, c), -1, p) % p == a2


def _legacy_verify_coin_share(public: CoinPublic, share: CoinShare) -> bool:
    base = public.coin_base(share.name)
    return all(
        _legacy_verify_dleq(
            public.group,
            public.group.g,
            public.verification[slot],
            base,
            share.values[slot],
            share.proofs[slot],
            ("coin", share.name, slot),
        )
        for slot in share.values
    )


# -- microbenchmarks -------------------------------------------------------------


def _bench_primitives(group: SchnorrGroup, rng: random.Random, repeats: int) -> dict:
    p, q = group.p, group.q
    exponent = rng.randrange(1, q)
    element = group.random_element(rng)
    pairs = [
        (group.random_element(rng), rng.randrange(1, q)) for _ in range(8)
    ]
    accel = accel_for(group)
    for _ in range(64):  # let auto-tabling kick in for the fixed base
        accel.exp(element, exponent)

    t_pow = _time(lambda: pow(element, exponent, p), repeats * 50) * 1e6
    t_table = _time(lambda: accel.exp(element, exponent), repeats * 50) * 1e6
    t_naive_product = _time(
        lambda: [pow(b, e, p) for b, e in pairs], repeats * 10
    ) * 1e6
    t_multiexp = _time(lambda: multiexp(p, pairs), repeats * 10) * 1e6
    t_member_pow = _time(lambda: pow(element, q, p) == 1, repeats * 50) * 1e6
    t_member_jacobi = _time(lambda: jacobi(element, p) == 1, repeats * 50) * 1e6
    return {
        "pow_us": t_pow,
        "fixed_base_table_us": t_table,
        "fixed_base_speedup": t_pow / t_table,
        "naive_8_term_product_us": t_naive_product,
        "multiexp_8_term_us": t_multiexp,
        "multiexp_speedup": t_naive_product / t_multiexp,
        "membership_pow_us": t_member_pow,
        "membership_jacobi_us": t_member_jacobi,
        "membership_speedup": t_member_pow / t_member_jacobi,
    }


def _bench_coin_quorum(group: SchnorrGroup, rng: random.Random, repeats: int) -> dict:
    scheme = threshold_scheme(_N, _T, group.q)
    public, holders = deal_coin(group, scheme, rng)
    name = ("bench-coin", 1)
    quorum = [holders[party].share_for(name, rng) for party in sorted(holders)[: _T + 1]]

    def legacy() -> None:
        assert all(_legacy_verify_coin_share(public, s) for s in quorum)

    def per_share() -> None:
        assert all(public.verify_share(s) for s in quorum)

    def batch() -> None:
        assert len(public.verify_shares(name, quorum)) == len(quorum)

    batch()  # warm the accel tables and hash caches for all three paths
    t_legacy = _time(legacy, repeats) * 1e3
    t_per_share = _time(per_share, repeats) * 1e3
    t_batch = _time(batch, repeats) * 1e3
    return {
        "n": _N,
        "t": _T,
        "quorum_shares": len(quorum),
        "legacy_ms": t_legacy,
        "per_share_ms": t_per_share,
        "batch_ms": t_batch,
        "speedup_batch_vs_legacy": t_legacy / t_batch,
        "speedup_batch_vs_per_share": t_per_share / t_batch,
        "speedup_per_share_vs_legacy": t_legacy / t_per_share,
    }


def _bench_decryption_quorum(
    group: SchnorrGroup, rng: random.Random, repeats: int
) -> dict:
    scheme = threshold_scheme(_N, _T, group.q)
    public, holders = deal_encryption(group, scheme, rng)
    ct = public.encrypt(b"benchmark payload", b"label", rng)
    quorum = [
        holders[party].decryption_share(ct, rng)
        for party in sorted(holders)[: _T + 1]
    ]

    def per_share() -> None:
        assert all(public.verify_share(ct, s) for s in quorum)

    def batch() -> None:
        assert len(public.verify_shares(ct, quorum)) == len(quorum)

    batch()
    t_per_share = _time(per_share, repeats) * 1e3
    t_batch = _time(batch, repeats) * 1e3
    return {
        "n": _N,
        "t": _T,
        "quorum_shares": len(quorum),
        "per_share_ms": t_per_share,
        "batch_ms": t_batch,
        "speedup_batch_vs_per_share": t_per_share / t_batch,
    }


def _bench_rsa_quorum(rng: random.Random, repeats: int, bits: int) -> dict:
    public, holders = deal_shoup_rsa(_N, _T + 1, rng, bits=bits)
    message = ("bench-rsa", 1)
    quorum = [
        holders[party].sign_share(message, rng)
        for party in sorted(holders)[: _T + 1]
    ]

    def per_share() -> None:
        assert all(public.verify_share(message, s) for s in quorum)

    def batch() -> None:
        assert len(public.verify_shares(message, quorum)) == len(quorum)

    batch()
    t_per_share = _time(per_share, repeats) * 1e3
    t_batch = _time(batch, repeats) * 1e3
    return {
        "n": _N,
        "k": _T + 1,
        "modulus_bits": bits,
        "quorum_shares": len(quorum),
        "per_share_ms": t_per_share,
        "batch_ms": t_batch,
        "speedup_batch_vs_per_share": t_per_share / t_batch,
    }


def _bench_cert_quorum(group: SchnorrGroup, rng: random.Random, repeats: int) -> dict:
    keys = {party: keygen(rng, group) for party in range(_N)}
    public, holders = deal_quorum_certs(
        keys, qualifier=lambda signers: len(signers) >= _N - _T
    )
    message = ("bench-cert", 1)
    shares = {
        party: holders[party].sign_share(message, rng)
        for party in range(_N - _T)
    }
    items = [
        (public.verify_keys[party], (public.tag, message), sig)
        for party, sig in sorted(shares.items())
    ]

    def per_share() -> None:
        assert all(
            public.verify_share(message, (party, sig))
            for party, sig in shares.items()
        )

    def batch() -> None:
        assert verify_batch(group, items)

    batch()
    t_per_share = _time(per_share, repeats) * 1e3
    t_batch = _time(batch, repeats) * 1e3
    return {
        "n": _N,
        "quorum_shares": len(shares),
        "per_share_ms": t_per_share,
        "batch_ms": t_batch,
        "speedup_batch_vs_per_share": t_per_share / t_batch,
    }


# -- end-to-end agreement --------------------------------------------------------


# Benchmark system sizes with their maximal classical resilience.
_AGREEMENT_SIZES = {4: 1, 7: 2, 16: 5}


def _bench_agreement(n: int, seed: int, instances: int) -> dict:
    from .core.binary_agreement import BinaryAgreement, aba_session
    from .core.runtime import ProtocolRuntime
    from .crypto.dealer import deal_system
    from .net.scheduler import RandomScheduler
    from .net.simulator import Network

    t = _AGREEMENT_SIZES[n]
    rng = random.Random(seed)
    keys = deal_system(n, rng, t=t)
    network = Network(RandomScheduler(), random.Random(seed))
    runtimes = {}
    for party in range(n):
        runtime = ProtocolRuntime(
            party, network, keys.public, keys.private[party], seed=seed
        )
        network.attach(party, runtime)
        runtimes[party] = runtime

    start = time.perf_counter()
    decided = 0
    for tag in range(instances):
        session = aba_session(("bench", tag))
        for party, runtime in runtimes.items():
            runtime.spawn(session, BinaryAgreement(party % 2))
        network.run(
            max_steps=2_000_000,
            until=lambda: all(
                r.result(session) is not None for r in runtimes.values()
            ),
        )
        outputs = {r.result(session) for r in runtimes.values()}
        assert len(outputs) == 1 and None not in outputs
        decided += 1
    elapsed = time.perf_counter() - start
    return {
        "n": n,
        "t": t,
        "instances": decided,
        "total_s": elapsed,
        "per_instance_ms": elapsed / decided * 1e3,
        "messages_delivered": network.delivered_count,
    }


def _bench_dkg(n: int, t: int, seed: int, repeats: int) -> dict:
    """Wall time for a complete dealerless key generation on the
    simulated network: ``n`` parties deal Feldman-committed sharings,
    cross-verify subshares, agree on the qualified set, and assemble
    dealer-compatible keys.

    Besides the absolute wall time per (n, t), the section records
    ``dealer_to_dkg_ratio`` — the centralized dealer's wall time over
    the DKG's on the same shape.  Both sides are dominated by the same
    group exponentiations on the same machine, so the ratio is stable
    across hosts and is what the regression guard tracks: a pessimized
    DKG hot path (tree commitments, subshare verification) shrinks it.
    """
    from .adversary.quorums import quorum_system_for
    from .core.runtime import ProtocolRuntime
    from .crypto.dealer import deal_system
    from .crypto.dkg import (
        BootstrapPublic,
        DistributedKeyGeneration,
        build_party_keys,
        build_public_keys,
        dkg_session,
        provision_bootstrap,
    )
    from .net.scheduler import RandomScheduler
    from .net.simulator import Network

    group = default_group()
    scheme = threshold_scheme(n, t, group.q)
    quorum = quorum_system_for(n, t=t)
    bundles = provision_bootstrap(list(range(n)), random.Random(seed), group)

    best = float("inf")
    messages = 0
    for attempt in range(repeats):
        network = Network(RandomScheduler(), random.Random(seed + attempt))
        public = BootstrapPublic(n=n, quorum=quorum)
        runtimes = {}
        for party in range(n):
            runtime = ProtocolRuntime(
                party, network, public, bundles[party], seed=seed + attempt
            )
            network.attach(party, runtime)
            runtimes[party] = runtime
        session = dkg_session(("bench", attempt))

        start = time.perf_counter()
        for party in range(n):
            runtimes[party].spawn(
                session, DistributedKeyGeneration(group, scheme)
            )
        network.run(
            max_steps=5_000_000,
            until=lambda: all(
                r.result(session) is not None for r in runtimes.values()
            ),
        )
        outputs = {p: runtimes[p].result(session) for p in range(n)}
        assert all(out is not None for out in outputs.values())
        assembled = build_public_keys(group, scheme, quorum, n, outputs[0])
        build_party_keys(0, assembled, bundles[0].signing_key, outputs[0])
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            messages = network.delivered_count

    dealer_s = _time(
        lambda: deal_system(n, random.Random(seed), t=t, group=group),
        repeats,
    )
    return {
        "n": n,
        "t": t,
        "wall_s": best,
        "per_party_ms": best / n * 1e3,
        "dealer_s": dealer_s,
        "dealer_to_dkg_ratio": dealer_s / best,
        "messages_delivered": messages,
    }


# -- end-to-end replicated-service throughput (``bench e2e``) --------------------
#
# Spins up a real n=4 TCP cluster (the same replica subprocesses the
# chaos engine drives) and measures committed client operations per
# second under open-loop load, twice: once with batching and pipelining
# disabled (max_batch=1, pipeline_depth=1 — the pre-batching protocol)
# and once with them on.  The tracked artifact is BENCH_e2e.json.


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


async def _e2e_cluster_run(
    label: str,
    workdir: "pathlib.Path",
    seed: int,
    n: int,
    t: int,
    num_clients: int,
    ops_total: int,
    window: int,
    abc_max_batch: int,
    abc_pipeline_depth: int,
    deadline_s: float,
) -> dict:
    """One measured run against a fresh TCP cluster; returns the stats."""
    import asyncio

    from .crypto import keystore
    from .crypto.dealer import CLIENT_BASE, deal_system
    from .crypto.groups import small_group
    from .net.runtime import (
        CLUSTER_FILE,
        ClusterConfig,
        _spawn_replica,
        allocate_addresses,
    )
    from .net.transport import TransportNetwork
    from .smr.client import ServiceClient

    rng = random.Random(seed)
    keys = deal_system(n, rng, t=t, clients=num_clients, group=small_group())
    keystore.write_deployment(keys, workdir)
    client_ids = [CLIENT_BASE + c for c in range(num_clients)]
    addresses = allocate_addresses(list(range(n)) + client_ids)
    ClusterConfig(
        addresses,
        abc_max_batch=abc_max_batch,
        abc_pipeline_depth=abc_pipeline_depth,
    ).save(workdir / CLUSTER_FILE)

    print(
        f"bench e2e[{label}]: n={n} t={t} clients={num_clients} "
        f"ops={ops_total} max_batch={abc_max_batch} "
        f"pipeline_depth={abc_pipeline_depth}",
        flush=True,
    )
    replicas = {
        party: await _spawn_replica(workdir, party) for party in range(n)
    }
    networks: list[TransportNetwork] = []
    clients: list[ServiceClient] = []
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    committed = 0
    try:
        for party in range(n):
            await replicas[party].wait_for_line("listening")
        public = keystore.load_public(workdir / "public.json")
        for cid_expected in client_ids:
            cid, channel_keys = keystore.load_client(
                workdir / f"client-{cid_expected}.json"
            )
            network = TransportNetwork(cid, addresses, channel_keys)
            client = ServiceClient(cid, network, public, random.Random(seed + cid))
            network.attach(cid, client)
            await network.start()
            networks.append(network)
            clients.append(client)

        deadline = loop.time() + deadline_s

        async def drive(client: ServiceClient, count: int) -> int:
            """Open-loop driver: keep up to ``window`` requests in
            flight, no resubmission, record per-op commit latency."""
            sent: dict[int, float] = {}
            done = 0
            next_op = 0
            while done < count and loop.time() < deadline:
                while len(sent) < window and next_op < count:
                    operation = (
                        "set", f"bench-{client.client_id}-{next_op}", next_op
                    )
                    sent[client.submit(operation)] = loop.time()
                    next_op += 1
                await asyncio.sleep(0.002)
                finished = [nc for nc in sent if nc in client.completed]
                for nonce in finished:
                    latencies.append(loop.time() - sent.pop(nonce))
                    done += 1
            return done

        share, spill = divmod(ops_total, num_clients)
        started = loop.time()
        counts = await asyncio.gather(
            *(
                drive(client, share + (1 if i < spill else 0))
                for i, client in enumerate(clients)
            )
        )
        elapsed = max(loop.time() - started, 1e-9)
        committed = sum(counts)

        for party in sorted(replicas):
            await replicas[party].stop()
    finally:
        for process in replicas.values():
            await process.kill()
        for network in networks:
            await network.close()

    # SIGTERM made each replica print its atomic-broadcast counters.
    abc_stats: list[dict[str, float]] = []
    for party in sorted(replicas):
        for line in replicas[party].lines:
            if "replica-abc-stats" not in line:
                continue
            fields = dict(
                part.split("=", 1) for part in line.split() if "=" in part
            )
            abc_stats.append({key: float(value) for key, value in fields.items()})
    def mean(key: str) -> float:
        if not abc_stats:
            return 0.0
        return sum(s[key] for s in abc_stats) / len(abc_stats)
    lat_sorted = sorted(latencies)
    result = {
        "label": label,
        "max_batch": abc_max_batch,
        "pipeline_depth": abc_pipeline_depth,
        "ops_total": ops_total,
        "committed": committed,
        "elapsed_s": elapsed,
        "committed_ops_per_s": committed / elapsed,
        "p50_ms": _percentile(lat_sorted, 0.50) * 1e3,
        "p99_ms": _percentile(lat_sorted, 0.99) * 1e3,
        "mean_batch": mean("mean_batch"),
        "pipeline_occupancy": mean("occupancy"),
        "rounds": mean("rounds"),
    }
    print(
        f"bench e2e[{label}]: {committed}/{ops_total} committed in "
        f"{elapsed:.2f}s = {result['committed_ops_per_s']:.1f} ops/s "
        f"(p50 {result['p50_ms']:.0f}ms, p99 {result['p99_ms']:.0f}ms, "
        f"mean batch {result['mean_batch']:.2f}, "
        f"occupancy {result['pipeline_occupancy']:.2f})",
        flush=True,
    )
    return result


def run_e2e_benchmark(seed: int = 0, smoke: bool = False) -> dict:
    """Baseline (unbatched, unpipelined) vs batched+pipelined atomic
    broadcast on the same n=4 TCP cluster shape."""
    import asyncio
    import pathlib
    import shutil
    import tempfile

    ops_total = 24 if smoke else 120
    window = 8 if smoke else 24
    deadline_s = 60.0 if smoke else 240.0

    async def both() -> tuple[dict, dict]:
        runs = []
        for label, max_batch, depth in (
            ("baseline", 1, 1),
            ("batched", 64, 4),
        ):
            workdir = pathlib.Path(tempfile.mkdtemp(prefix=f"bench-e2e-{label}-"))
            try:
                runs.append(
                    await _e2e_cluster_run(
                        label,
                        workdir,
                        seed=seed,
                        n=4,
                        t=1,
                        num_clients=2,
                        ops_total=ops_total,
                        window=window,
                        abc_max_batch=max_batch,
                        abc_pipeline_depth=depth,
                        deadline_s=deadline_s,
                    )
                )
            finally:
                shutil.rmtree(workdir, ignore_errors=True)
        return runs[0], runs[1]

    baseline, batched = asyncio.run(both())
    speedup = (
        batched["committed_ops_per_s"] / baseline["committed_ops_per_s"]
        if baseline["committed_ops_per_s"] > 0
        else 0.0
    )
    return {
        "config": {
            "seed": seed,
            "smoke": smoke,
            "n": 4,
            "t": 1,
            "clients": 2,
            "ops_total": ops_total,
            "window": window,
        },
        "baseline": baseline,
        "batched": batched,
        "speedup_committed_ops_per_s": speedup,
    }


def main_e2e(seed: int, out: str, smoke: bool) -> int:
    results = run_e2e_benchmark(seed=seed, smoke=smoke)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    baseline, batched = results["baseline"], results["batched"]
    print(
        f"e2e throughput: baseline {baseline['committed_ops_per_s']:.1f} ops/s "
        f"-> batched {batched['committed_ops_per_s']:.1f} ops/s "
        f"({results['speedup_committed_ops_per_s']:.1f}x)"
    )
    print(f"wrote {out}")
    if baseline["committed"] == 0 or batched["committed"] == 0:
        print("bench e2e: FAILED (a configuration committed zero operations)")
        return 1
    return 0


# -- driver ----------------------------------------------------------------------


def run_benchmarks(seed: int = 0, smoke: bool = False) -> dict:
    """Run the suite; ``smoke`` trims repeats for CI wiring checks."""
    rng = random.Random(seed)
    group = default_group()
    repeats = 1 if smoke else 5
    rsa_bits = 256 if smoke else 512
    agreement_sizes = [4] if smoke else [4, 7, 16]
    agreement_instances = 1 if smoke else 3
    dkg_shapes = [(4, 1)] if smoke else [(4, 1), (7, 2), (10, 3)]
    dkg_repeats = 1 if smoke else 3

    results: dict = {
        "config": {
            "seed": seed,
            "smoke": smoke,
            "group_bits": group.p.bit_length(),
            "repeats": repeats,
        },
        "primitives": _bench_primitives(group, rng, repeats),
        "coin_quorum": _bench_coin_quorum(group, rng, repeats),
        "decryption_quorum": _bench_decryption_quorum(group, rng, repeats),
        "rsa_quorum": _bench_rsa_quorum(rng, repeats, rsa_bits),
        "cert_quorum": _bench_cert_quorum(group, rng, repeats),
        "agreement": {
            f"n{n}": _bench_agreement(n, seed, agreement_instances)
            for n in agreement_sizes
        },
        "dkg": {
            f"n{n}t{t}": _bench_dkg(n, t, seed, dkg_repeats)
            for n, t in dkg_shapes
        },
    }
    return results


def main(seed: int, out: str, smoke: bool) -> int:
    results = run_benchmarks(seed=seed, smoke=smoke)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    coin = results["coin_quorum"]
    print(
        f"coin quorum (n={coin['n']}, t={coin['t']}): "
        f"legacy {coin['legacy_ms']:.2f}ms  "
        f"per-share {coin['per_share_ms']:.2f}ms  "
        f"batch {coin['batch_ms']:.2f}ms  "
        f"({coin['speedup_batch_vs_legacy']:.1f}x vs legacy)"
    )
    for label, section in results["agreement"].items():
        print(
            f"agreement {label}: {section['per_instance_ms']:.0f}ms/instance "
            f"({section['messages_delivered']} messages)"
        )
    for label, section in results["dkg"].items():
        print(
            f"dkg {label}: {section['wall_s'] * 1e3:.0f}ms wall "
            f"({section['messages_delivered']} messages, "
            f"dealer/dkg {section['dealer_to_dkg_ratio']:.3f})"
        )
    print(f"wrote {out}")
    return 0


# -- regression guard -------------------------------------------------------------
#
# CI produces fresh *smoke* numbers and compares them against the
# committed full-mode artifacts, so the catalogue records how much each
# metric sags in smoke mode (fewer repeats, smaller keys, shorter
# windows).  The floor for a metric is
#
#     committed * (1 - tolerance - smoke_slack)
#
# where smoke_slack applies only when the fresh and committed runs used
# different modes.  Primitives ratios are stable across modes (tight
# slack); quorum and end-to-end ratios are timing-noise dominated in
# smoke mode (loose slack) — the guard still catches the catastrophic
# regressions (an accidentally disabled fast path reads ~1.0x).

# (path, smoke_slack) per artifact kind; paths are dotted keys.
GUARD_METRICS: dict[str, tuple[tuple[str, float], ...]] = {
    "crypto": (
        ("primitives.multiexp_speedup", 0.15),
        ("primitives.fixed_base_speedup", 0.15),
        ("primitives.membership_speedup", 0.15),
        ("coin_quorum.speedup_batch_vs_legacy", 0.45),
        ("rsa_quorum.speedup_batch_vs_per_share", 0.45),
        ("dkg.n4t1.dealer_to_dkg_ratio", 0.45),
    ),
    "e2e": (
        ("speedup_committed_ops_per_s", 0.60),
    ),
}


def _dig(data: dict, path: str) -> object | None:
    node: object = data
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def guard_compare(
    kind: str, fresh: dict, committed: dict, tolerance: float = 0.30
) -> tuple[list[str], list[str]]:
    """Compare fresh bench numbers against a committed artifact.

    Returns ``(failures, notes)``; empty ``failures`` means no metric
    regressed below its floor.  Pure function over the two JSON dicts,
    so it is unit-testable without running any benchmark.
    """
    failures: list[str] = []
    notes: list[str] = []
    fresh_smoke = bool(_dig(fresh, "config.smoke"))
    committed_smoke = bool(_dig(committed, "config.smoke"))
    modes_differ = fresh_smoke != committed_smoke
    for path, smoke_slack in GUARD_METRICS.get(kind, ()):
        reference = _dig(committed, path)
        current = _dig(fresh, path)
        if not isinstance(reference, (int, float)):
            notes.append(f"{kind}:{path}: not in committed artifact, skipped")
            continue
        if not isinstance(current, (int, float)):
            failures.append(f"{kind}:{path}: missing from fresh results")
            continue
        slack = smoke_slack if modes_differ else 0.0
        floor = reference * (1.0 - tolerance - slack)
        if current < floor:
            failures.append(
                f"{kind}:{path}: {current:.3f} < floor {floor:.3f} "
                f"(committed {reference:.3f}, tolerance {tolerance:.0%}"
                + (f" + smoke slack {slack:.0%}" if slack else "")
                + ")"
            )
        else:
            notes.append(
                f"{kind}:{path}: {current:.3f} vs committed {reference:.3f} "
                f"(floor {floor:.3f}) ok"
            )
    return failures, notes


def main_guard(
    crypto_fresh: str | None,
    e2e_fresh: str | None,
    crypto_committed: str = "BENCH_crypto.json",
    e2e_committed: str = "BENCH_e2e.json",
    tolerance: float = 0.30,
) -> int:
    """CLI driver for ``python -m repro bench guard``."""
    import pathlib

    pairs = []
    if crypto_fresh is not None:
        pairs.append(("crypto", crypto_fresh, crypto_committed))
    if e2e_fresh is not None:
        pairs.append(("e2e", e2e_fresh, e2e_committed))
    if not pairs:
        print("bench guard: nothing to compare "
              "(pass --crypto-fresh and/or --e2e-fresh)")
        return 2
    all_failures: list[str] = []
    for kind, fresh_path, committed_path in pairs:
        for label, path in (("fresh", fresh_path), ("committed", committed_path)):
            if not pathlib.Path(path).exists():
                print(f"bench guard: {kind} {label} file {path} not found")
                return 2
        with open(fresh_path, encoding="utf-8") as fh:
            fresh = json.load(fh)
        with open(committed_path, encoding="utf-8") as fh:
            committed = json.load(fh)
        failures, notes = guard_compare(
            kind, fresh, committed, tolerance=tolerance
        )
        for note in notes:
            print(f"bench guard: {note}")
        for failure in failures:
            print(f"bench guard: REGRESSION {failure}")
        all_failures.extend(failures)
    if all_failures:
        print(f"bench guard: FAILED ({len(all_failures)} regression(s))")
        return 1
    print("bench guard: ok")
    return 0
