#!/usr/bin/env bash
# Full static + dynamic check gate, as run by CI.
#
#   scripts/check.sh          # repro lint (JSON) + ruff + mypy + pytest
#   scripts/check.sh --fast   # skip pytest
#
# ruff and mypy are optional-dependency tools (pip install -e '.[lint]');
# when absent they are skipped with a notice so the gate still runs in
# minimal containers.  `repro lint` and pytest have no dependencies
# beyond the standard toolchain and always run.

set -u
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
failures=0

step() {
    echo
    echo "== $1"
}

# Lint wall-time budget (seconds).  The incremental cache
# (.lint-cache.json) should keep warm runs far under this; blowing the
# budget means the cache regressed or a rule got pathologically slow.
LINT_BUDGET="${LINT_BUDGET:-30}"

step "repro lint (protocol-invariant rules RL001-RL009)"
lint_start=$(date +%s.%N)
if ! python -m repro lint src/repro --format json > /tmp/repro-lint.json; then
    cat /tmp/repro-lint.json
    if [ "${GITHUB_ACTIONS:-}" = "true" ]; then
        # Surface each finding as a GitHub Actions annotation so it is
        # pinned to the offending line in the PR diff view.
        python - <<'EOF'
import json
report = json.load(open("/tmp/repro-lint.json"))
for diag in report.get("diagnostics", []):
    message = diag["message"].replace("%", "%25").replace("\n", "%0A")
    print(f"::error file=src/repro/{diag['path']},"
          f"line={diag['line']},col={diag['col']},"
          f"title=repro lint {diag['rule']}::{message}")
EOF
    fi
    echo "repro lint: FAILED"
    failures=$((failures + 1))
else
    python - <<'EOF'
import json
report = json.load(open("/tmp/repro-lint.json"))
print(f"repro lint: ok ({report['files_scanned']} files, "
      f"{report['baselined']} baselined, {report['suppressed']} suppressed)")
EOF
fi
lint_wall=$(date +%s.%N | awk -v s="$lint_start" '{printf "%.2f", $1 - s}')
python - "$lint_wall" "$LINT_BUDGET" <<'EOF'
import json, sys
wall, budget = float(sys.argv[1]), float(sys.argv[2])
report = json.load(open("/tmp/repro-lint.json"))
timings = report.get("timings", {})
for rule, secs in sorted(timings.items(), key=lambda kv: -kv[1]):
    print(f"  {rule}: {secs:.3f}s")
ruled = sum(timings.values())
print(f"  wall: {wall:.2f}s, in-rule: {ruled:.2f}s (budget {budget:.0f}s)")
if wall > budget:
    print(f"::warning::repro lint took {wall:.2f}s, over the "
          f"{budget:.0f}s budget — is .lint-cache.json being invalidated?")
EOF

step "repro lint self-check (the analysis package lints itself)"
if ! python -m repro lint src/repro/analysis --format json \
        > /tmp/repro-lint-self.json; then
    cat /tmp/repro-lint-self.json
    echo "repro lint self-check: FAILED"
    failures=$((failures + 1))
else
    echo "repro lint self-check: ok"
fi

step "repro lint SARIF report (artifact for code scanning)"
python -m repro lint src/repro --format sarif > /tmp/repro-lint.sarif || true
python - <<'EOF'
import json
report = json.load(open("/tmp/repro-lint.sarif"))
results = report["runs"][0]["results"]
print(f"sarif: wrote /tmp/repro-lint.sarif ({len(results)} result(s))")
EOF

step "ruff"
if python -m ruff --version >/dev/null 2>&1; then
    if ! python -m ruff check src/repro; then
        echo "ruff: FAILED"
        failures=$((failures + 1))
    else
        echo "ruff: ok"
    fi
else
    echo "ruff: not installed, skipped (pip install -e '.[lint]')"
fi

step "mypy (strict on repro.core / repro.adversary / repro.analysis)"
if python -m mypy --version >/dev/null 2>&1; then
    if ! python -m mypy; then
        echo "mypy: FAILED"
        failures=$((failures + 1))
    else
        echo "mypy: ok"
    fi
else
    echo "mypy: not installed, skipped (pip install -e '.[lint]')"
fi

if [ "${1:-}" != "--fast" ]; then
    step "pytest (tier-1)"
    if ! python -m pytest -x -q; then
        echo "pytest: FAILED"
        failures=$((failures + 1))
    fi

    step "bench smoke (wiring check, docs/PERFORMANCE.md)"
    if ! python -m repro bench --smoke --out /tmp/repro-bench-smoke.json \
            > /dev/null; then
        echo "bench smoke: FAILED"
        failures=$((failures + 1))
    else
        echo "bench smoke: ok"
    fi

    step "bench e2e smoke (TCP cluster throughput wiring, docs/PERFORMANCE.md)"
    if ! python -m repro bench e2e --smoke \
            --out /tmp/repro-bench-e2e-smoke.json > /dev/null; then
        echo "bench e2e smoke: FAILED (zero committed throughput?)"
        failures=$((failures + 1))
    else
        python - <<'EOF'
import json
report = json.load(open("/tmp/repro-bench-e2e-smoke.json"))
print(f"bench e2e smoke: ok "
      f"(baseline {report['baseline']['committed_ops_per_s']:.1f} ops/s, "
      f"batched {report['batched']['committed_ops_per_s']:.1f} ops/s)")
EOF
    fi

    step "bench regression guard (fresh smoke vs committed artifacts)"
    if ! python -m repro bench guard \
            --crypto-fresh /tmp/repro-bench-smoke.json \
            --e2e-fresh /tmp/repro-bench-e2e-smoke.json; then
        echo "bench guard: FAILED (perf regression vs committed artifacts)"
        failures=$((failures + 1))
    fi

    step "chaos smoke (seeded fault injection, docs/CHAOS.md)"
    if ! python -m repro chaos run --scenario partition-heal \
            --journal /tmp/repro-chaos-journal.json \
            --failure-json /tmp/repro-chaos-failure.json > /dev/null; then
        echo "chaos smoke: FAILED (safety/liveness checker)"
        [ -f /tmp/repro-chaos-failure.json ] && cat /tmp/repro-chaos-failure.json
        failures=$((failures + 1))
    elif ! python -m repro chaos replay \
            --journal /tmp/repro-chaos-journal.json > /dev/null; then
        echo "chaos smoke: FAILED (journal replay mismatch)"
        failures=$((failures + 1))
    else
        echo "chaos smoke: ok"
    fi

    step "sweep smoke (grid-driven chaos campaign, docs/CHAOS.md)"
    if ! python -m repro sweep --smoke --out /tmp/repro-sweep.json \
            --repro-dir /tmp/repro-sweep-repro > /tmp/repro-sweep.log 2>&1; then
        tail -40 /tmp/repro-sweep.log
        echo "sweep smoke: FAILED (a cell mismatched its expectation)"
        failures=$((failures + 1))
    else
        python - <<'EOF'
import json
report = json.load(open("/tmp/repro-sweep.json"))
totals = report["totals"]
assert totals["runs"] >= 20, f"sweep smoke ran only {totals['runs']} cells"
print(f"sweep smoke: ok ({totals['runs']} runs: {totals['passed']} passed, "
      f"{totals['expected_violations']} expected violation(s) fired)")
EOF
    fi
fi

echo
if [ "$failures" -ne 0 ]; then
    echo "check.sh: $failures gate(s) failed"
    exit 1
fi
echo "check.sh: all gates passed"
